"""Fleet simulation result records.

Mirrors :mod:`repro.sim.results` one level up: a tenant's epoch record is
an :class:`~repro.sim.results.EpochRecord` tagged with the fleet epoch,
the VM ordinal and the host it ran on, and :class:`FleetResult` aggregates
the cluster-level statistics the paper's problem is about — host-side
fragmentation (FMFI) across the fleet, the distribution of well-aligned
huge-page rates over hosts, migration cost accounting, and per-tenant
throughput/latency.
"""

from __future__ import annotations

import pickle
import zlib
from dataclasses import dataclass, field

from repro.metrics.alignment import AlignmentReport
from repro.metrics.performance import EpochPerformance

__all__ = [
    "FleetResult",
    "HostEpochRecord",
    "MigrationRecord",
    "TenantEpochRecord",
    "decode_records",
    "encode_records",
]


# ----------------------------------------------------------------------
# Record spool wire format
# ----------------------------------------------------------------------
#
# Workers accumulate their hosts' epoch records locally and drain them in
# bulk every K epochs (``spool_epochs``) — the controller never reads
# records mid-run, so per-epoch record traffic is pure waste.  A drain is
# one compressed blob per host: records compress extremely well (repeated
# dataclass field names, near-identical numeric layouts), and one big
# transfer amortises the pipe latency that dominated the per-epoch
# protocol.  ``compress=False`` is the in-process path: no pipe, no
# encode.


def encode_records(
    host_records: list["HostEpochRecord"],
    tenant_records: list["TenantEpochRecord"],
    compress: bool = True,
) -> tuple:
    """Pack one drained spool for the wire."""
    if not compress:
        return ("raw", host_records, tenant_records)
    blob = zlib.compress(
        pickle.dumps(
            (host_records, tenant_records), pickle.HIGHEST_PROTOCOL
        ),
        6,
    )
    return ("zlib", blob)


def decode_records(
    payload: tuple,
) -> tuple[list["HostEpochRecord"], list["TenantEpochRecord"]]:
    """Unpack one spool drained by :func:`encode_records`."""
    if payload[0] == "raw":
        return payload[1], payload[2]
    return pickle.loads(zlib.decompress(payload[1]))


@dataclass
class TenantEpochRecord:
    """One tenant's measurements for one fleet epoch."""

    epoch: int  # fleet epoch
    ordinal: int  # fleet-unique VM id
    host: int  # host index the epoch ran on
    workload: str
    tenant_epoch: int  # the tenant's own epoch count (age)
    performance: EpochPerformance
    alignment: AlignmentReport
    fmfi_guest: float


@dataclass
class HostEpochRecord:
    """One host's state after one fleet epoch."""

    epoch: int
    host: int
    fmfi: float
    free_pages: int
    aligned_free_pages: int  # free pages inside huge-aligned buddy blocks
    total_pages: int
    vms: int
    # Pressure-subsystem fields (all zero while the subsystem is off).
    pressure: float = 0.0  # normalised watermark pressure in [0, 1]
    swapped_pages: int = 0  # pages resident on the swap device now
    swap_out_pages: int = 0  # cumulative device write-out traffic
    swap_in_pages: int = 0  # cumulative demand swap-in traffic
    pressure_demotions: int = 0  # cumulative ladder huge-page demotions
    pressure_aligned_demotions: int = 0  # ...of well-aligned huge pages

    @property
    def utilization(self) -> float:
        return 1.0 - self.free_pages / self.total_pages


@dataclass
class MigrationRecord:
    """Accounting of one live migration."""

    epoch: int
    ordinal: int
    source: int
    destination: int
    reason: str  # "overload" | "underload"
    resident_pages: int
    rounds: int  # pre-copy rounds before stop-and-copy
    copied_pages: int  # total pages moved, re-sends included
    downtime_pages: int  # dirty set moved during stop-and-copy
    precopy_cycles: float
    stopcopy_cycles: float
    shootdown_cycles: float

    @property
    def total_cycles(self) -> float:
        return self.precopy_cycles + self.stopcopy_cycles + self.shootdown_cycles


@dataclass
class FleetResult:
    """Aggregated outcome of one fleet simulation."""

    system: str
    placement: str
    hosts: int
    epochs: int
    seed: int
    tenant_epochs: list[TenantEpochRecord] = field(default_factory=list)
    host_epochs: list[HostEpochRecord] = field(default_factory=list)
    migrations: list[MigrationRecord] = field(default_factory=list)
    placement_failures: int = 0

    # ------------------------------------------------------------------
    # Fleet fragmentation
    # ------------------------------------------------------------------

    def _final_host_epochs(self) -> list[HostEpochRecord]:
        if not self.host_epochs:
            return []
        last = max(record.epoch for record in self.host_epochs)
        return [record for record in self.host_epochs if record.epoch == last]

    @property
    def fleet_fmfi(self) -> float:
        """Mean host FMFI at the final epoch."""
        final = self._final_host_epochs()
        return sum(r.fmfi for r in final) / len(final) if final else 0.0

    def host_fmfi(self) -> dict[int, float]:
        """Final-epoch FMFI per host."""
        return {r.host: r.fmfi for r in self._final_host_epochs()}

    # ------------------------------------------------------------------
    # Alignment
    # ------------------------------------------------------------------

    def _final_tenant_epochs(self) -> list[TenantEpochRecord]:
        if not self.tenant_epochs:
            return []
        last = max(record.epoch for record in self.tenant_epochs)
        return [record for record in self.tenant_epochs if record.epoch == last]

    def alignment_distribution(self) -> dict[int, float]:
        """Final-epoch well-aligned huge-page rate per host.

        Tenant alignment reports are merged per host, so the rate weighs
        every huge page on the host equally; hosts with no huge pages at
        the final epoch are omitted.
        """
        merged: dict[int, AlignmentReport] = {}
        for record in self._final_tenant_epochs():
            report = merged.setdefault(record.host, AlignmentReport())
            report.merge(record.alignment)
        return {
            host: report.well_aligned_rate
            for host, report in sorted(merged.items())
            if report.total_huge > 0
        }

    @property
    def fleet_well_aligned_rate(self) -> float:
        """Final-epoch well-aligned rate over every huge page in the fleet."""
        total = AlignmentReport()
        for record in self._final_tenant_epochs():
            total.merge(record.alignment)
        return total.well_aligned_rate if total.total_huge > 0 else 0.0

    # ------------------------------------------------------------------
    # Pressure / swap accounting
    # ------------------------------------------------------------------

    @property
    def fleet_swap_out_pages(self) -> int:
        """Cumulative swap write-out traffic across the fleet."""
        return sum(r.swap_out_pages for r in self._final_host_epochs())

    @property
    def fleet_swap_in_pages(self) -> int:
        """Cumulative demand swap-in traffic across the fleet."""
        return sum(r.swap_in_pages for r in self._final_host_epochs())

    @property
    def fleet_swapped_pages(self) -> int:
        """Pages resident on swap devices at the final epoch."""
        return sum(r.swapped_pages for r in self._final_host_epochs())

    @property
    def fleet_pressure_demotions(self) -> int:
        """Huge pages the pressure ladder demoted, fleet-wide."""
        return sum(r.pressure_demotions for r in self._final_host_epochs())

    @property
    def fleet_pressure_aligned_demotions(self) -> int:
        """Well-aligned huge pages the ladder destroyed, fleet-wide —
        the damage the alignment-aware victim policy minimises."""
        return sum(
            r.pressure_aligned_demotions for r in self._final_host_epochs()
        )

    @property
    def fleet_aligned_huge(self) -> int:
        """Well-aligned huge pages alive at the final epoch, fleet-wide."""
        return sum(
            r.alignment.aligned_total for r in self._final_tenant_epochs()
        )

    # ------------------------------------------------------------------
    # Migration accounting
    # ------------------------------------------------------------------

    @property
    def migration_count(self) -> int:
        return len(self.migrations)

    @property
    def migration_pages(self) -> int:
        return sum(m.copied_pages for m in self.migrations)

    @property
    def migration_cycles(self) -> float:
        return sum(m.total_cycles for m in self.migrations)

    # ------------------------------------------------------------------
    # Tenant performance
    # ------------------------------------------------------------------

    def _by_tenant(self) -> dict[int, list[TenantEpochRecord]]:
        grouped: dict[int, list[TenantEpochRecord]] = {}
        for record in self.tenant_epochs:
            grouped.setdefault(record.ordinal, []).append(record)
        return grouped

    @staticmethod
    def _steady(records: list[TenantEpochRecord]) -> list[TenantEpochRecord]:
        return records[len(records) // 2 :]

    def tenant_throughput(self, ordinal: int) -> float:
        """Ops per cycle over the tenant's steady-state (second-half) epochs."""
        records = self._by_tenant().get(ordinal, [])
        steady = self._steady(records)
        cycles = sum(r.performance.total_cycles for r in steady)
        ops = sum(r.performance.ops for r in steady)
        return ops / cycles if cycles > 0 else 0.0

    @property
    def mean_throughput(self) -> float:
        """Mean of per-tenant steady-state throughputs."""
        grouped = self._by_tenant()
        if not grouped:
            return 0.0
        return sum(self.tenant_throughput(o) for o in grouped) / len(grouped)

    @property
    def p99_latency(self) -> float:
        """Ops-weighted p99 latency over all steady-state tenant epochs."""
        weighted = 0.0
        ops = 0.0
        for records in self._by_tenant().values():
            for record in self._steady(records):
                if record.performance.p99_latency <= 0.0:
                    continue
                weighted += record.performance.p99_latency * record.performance.ops
                ops += record.performance.ops
        return weighted / ops if ops > 0 else 0.0

    # ------------------------------------------------------------------

    def to_dict(self) -> dict[str, float | int | str]:
        """Flat summary, for report tables."""
        return {
            "system": self.system,
            "placement": self.placement,
            "hosts": self.hosts,
            "epochs": self.epochs,
            "fleet_fmfi": self.fleet_fmfi,
            "well_aligned_rate": self.fleet_well_aligned_rate,
            "mean_throughput": self.mean_throughput,
            "p99_latency": self.p99_latency,
            "migrations": self.migration_count,
            "migration_pages": self.migration_pages,
            "migration_cycles": self.migration_cycles,
            "placement_failures": self.placement_failures,
            "swap_out_pages": self.fleet_swap_out_pages,
            "swap_in_pages": self.fleet_swap_in_pages,
            "swapped_pages": self.fleet_swapped_pages,
            "pressure_demotions": self.fleet_pressure_demotions,
            "pressure_aligned_demotions": self.fleet_pressure_aligned_demotions,
            "aligned_huge": self.fleet_aligned_huge,
        }
