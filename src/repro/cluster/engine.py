"""The fleet engine: churn, placement, consolidation, parallel stepping.

One :class:`ClusterSimulation` drives N hosts epoch by epoch:

1. the epoch's trace events are applied — arrivals go through the
   configured placement policy, departures free their VM (leaving the
   host-side holes behind), resizes balloon;
2. every ``consolidation.every`` epochs the controller runs a Neat-style
   consolidation pass (overload shedding, underload draining) whose moves
   are live migrations through :func:`repro.cluster.migration.migrate_out`
   / :func:`~repro.cluster.migration.migrate_in`;
3. every host steps one epoch.

Hosts live on a :class:`~repro.exec.actors.ActorPool`: each host is owned
by one worker for the whole run, so per-epoch traffic is just the step
command out and the epoch's records plus a small
:class:`~repro.cluster.host.HostView` back — the multi-megabyte host
graphs never travel (except a migrating tenant, which is the point of a
migration).  The controller makes every decision from the views, so
serial (``workers=1``, hosts in-process) and parallel runs of the same
seed produce identical results.

``run_cluster`` wraps a run with the content-keyed result cache, exactly
like ``run_cells`` does for single-host experiment cells.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import asdict

from repro.cluster.config import ClusterConfig
from repro.cluster.host import Host, HostView
from repro.cluster.migration import build_record, migrate_in, migrate_out
from repro.cluster.placement import make_placement
from repro.cluster.results import FleetResult, HostEpochRecord, TenantEpochRecord
from repro.cluster.trace import TraceEvent, build_trace
from repro.exec.actors import ActorPool
from repro.exec.cache import ResultCache, code_version
from repro.mem.layout import MIB, PAGE_SIZE
from repro.workloads import Workload, make_workload

__all__ = ["ClusterSimulation", "fleet_key", "run_cluster"]


# ----------------------------------------------------------------------
# Actor functions: run on the worker that owns the host.  Module-level so
# the pool can pickle them by reference; each returns a fresh HostView so
# the controller's picture stays current.
# ----------------------------------------------------------------------


def _act_step(
    host: Host, epoch: int
) -> tuple[list[HostEpochRecord], list[TenantEpochRecord], HostView]:
    host.step_epoch(epoch)
    host_records, tenant_records = host.drain_records()
    return host_records, tenant_records, host.summary()


def _act_add_tenant(
    host: Host, ordinal: int, guest_mib: int, workload: Workload, epoch: int
) -> HostView:
    host.add_tenant(ordinal, guest_mib, workload, epoch)
    return host.summary()


def _act_destroy_tenant(host: Host, ordinal: int) -> HostView:
    host.destroy_tenant(ordinal)
    return host.summary()


def _act_resize_tenant(
    host: Host, ordinal: int, grow: bool, fraction: float
) -> HostView:
    host.resize_tenant(ordinal, grow, fraction)
    return host.summary()


class ClusterSimulation:
    """One fleet simulation: N hosts, a churn trace, a placement policy."""

    def __init__(self, config: ClusterConfig | None = None) -> None:
        self.config = config or ClusterConfig()
        if self.config.hosts <= 0:
            raise ValueError("at least one host required")
        self.hosts = [Host(i, self.config) for i in range(self.config.hosts)]
        self.placement = make_placement(self.config.placement)
        self.trace = build_trace(self.config)
        self._events: dict[int, list[TraceEvent]] = {}
        for event in self.trace:
            self._events.setdefault(event.epoch, []).append(event)
        #: The controller's picture of each host, refreshed by every
        #: actor call; all placement/consolidation decisions read this.
        self._views: list[HostView] = [host.summary() for host in self.hosts]
        #: ordinal -> index of the host currently running the VM.
        self._vm_host: dict[int, int] = {}
        #: ordinal -> guest size in pages (the commitment a migration
        #: must find room for).
        self._guest_pages: dict[int, int] = {}
        self.result = FleetResult(
            system=self.config.system,
            placement=self.config.placement,
            hosts=self.config.hosts,
            epochs=self.config.epochs,
            seed=self.config.seed,
        )

    # ------------------------------------------------------------------
    # Run loop
    # ------------------------------------------------------------------

    def run(self, workers: int | None = None) -> FleetResult:
        """Run all epochs; *workers* > 1 steps hosts on a process pool."""
        consolidation = self.config.consolidation
        pool = ActorPool(workers)
        pool.scatter(self.hosts)
        try:
            for epoch in range(self.config.epochs):
                self._apply_events(pool, epoch)
                if (
                    consolidation.every > 0
                    and epoch > 0
                    and epoch % consolidation.every == 0
                ):
                    self._consolidate(pool, epoch)
                outputs = pool.map(
                    _act_step, [(epoch,)] * len(self.hosts)
                )
                for host_records, tenant_records, view in outputs:
                    self.result.host_epochs.extend(host_records)
                    self.result.tenant_epochs.extend(tenant_records)
                    self._views[view.index] = view
            # Bring the final host states home so callers can inspect
            # them the same way after serial and parallel runs.
            self.hosts = pool.gather()
        finally:
            pool.close()
        return self.result

    # ------------------------------------------------------------------
    # Churn events
    # ------------------------------------------------------------------

    def _apply_events(self, pool: ActorPool, epoch: int) -> None:
        for event in self._events.get(epoch, ()):
            if event.kind == "arrive":
                self._arrive(pool, event, epoch)
            elif event.ordinal in self._vm_host:
                index = self._vm_host[event.ordinal]
                if event.kind == "depart":
                    view = pool.apply(_act_destroy_tenant, index, event.ordinal)
                    del self._vm_host[event.ordinal]
                    del self._guest_pages[event.ordinal]
                else:
                    view = pool.apply(
                        _act_resize_tenant,
                        index,
                        event.ordinal,
                        event.grow,
                        event.delta_fraction,
                    )
                self._views[index] = view

    def _arrive(self, pool: ActorPool, event: TraceEvent, epoch: int) -> None:
        # Reserve the full guest size, not the workload footprint: guest
        # munmap never returns host frames (Section 6.3), so a VM's host
        # usage grows toward its guest size over its lifetime.  RAM is
        # not overcommitted, as on real clouds.
        guest_pages = event.guest_mib * MIB // PAGE_SIZE
        needed = int(guest_pages * self.config.placement_headroom)
        index = self.placement.select(self._views, needed)
        if index is None:
            self.result.placement_failures += 1
            return
        workload = make_workload(event.workload)
        self._views[index] = pool.apply(
            _act_add_tenant, index, event.ordinal, event.guest_mib, workload, epoch
        )
        self._vm_host[event.ordinal] = index
        self._guest_pages[event.ordinal] = guest_pages

    # ------------------------------------------------------------------
    # Consolidation (OpenStack-Neat-style: overload shedding, then
    # underload draining; every decision deterministic — hosts in index
    # order, tenants in ordinal order, budget-capped)
    # ------------------------------------------------------------------

    def _consolidate(self, pool: ActorPool, epoch: int) -> None:
        consolidation = self.config.consolidation
        budget = consolidation.max_migrations
        for index in range(len(self._views)):
            while (
                budget > 0
                and self._views[index].residents
                and self._views[index].utilization > consolidation.overload
            ):
                # Shed the cheapest VM to move: the smallest resident set.
                ordinal = min(
                    self._views[index].residents, key=lambda r: (r[1], r[0])
                )[0]
                if not self._migrate(pool, ordinal, index, epoch, "overload"):
                    break
                budget -= 1
        for index in range(len(self._views)):
            if budget <= 0:
                break
            view = self._views[index]
            if not view.residents or view.utilization >= consolidation.underload:
                continue
            for ordinal, _ in view.residents:
                if budget <= 0:
                    break
                if not self._migrate(pool, ordinal, index, epoch, "underload"):
                    break
                budget -= 1

    def _migrate(
        self, pool: ActorPool, ordinal: int, source: int, epoch: int, reason: str
    ) -> bool:
        needed = int(
            self._guest_pages[ordinal] * self.config.placement_headroom
        )
        destination = self.placement.select(
            self._views, needed, exclude=frozenset({source})
        )
        if destination is None:
            return False
        migration = self.config.migration
        tenant, state, runs, schedule, src_view = pool.apply(
            migrate_out, source, ordinal, migration
        )
        self._views[source] = src_view
        self._views[destination] = pool.apply(
            migrate_in, destination, tenant, state, runs, migration
        )
        self.result.migrations.append(
            build_record(
                epoch=epoch,
                ordinal=ordinal,
                source=source,
                destination=destination,
                reason=reason,
                runs=runs,
                schedule=schedule,
            )
        )
        self._vm_host[ordinal] = destination
        return True


# ----------------------------------------------------------------------
# Cached entry point
# ----------------------------------------------------------------------


def fleet_key(config: ClusterConfig) -> str:
    """Content key of one fleet run: same key == same result.

    Like :func:`repro.exec.cache.cell_key`, the two bit-identical fast
    paths (``batch_faults``, ``incremental_index``) are excluded so all
    settings share cache entries, and the code version is folded in so
    editing the simulator invalidates stale results.
    """
    payload = asdict(config)
    payload.pop("batch_faults", None)
    payload.pop("incremental_index", None)
    raw = json.dumps(
        {"cluster": payload, "code": code_version()},
        sort_keys=True,
        default=repr,
    ).encode()
    return hashlib.sha256(raw).hexdigest()


def run_cluster(
    config: ClusterConfig | None = None,
    workers: int | None = None,
    cache: ResultCache | None = None,
) -> FleetResult:
    """Run (or load) one fleet simulation.

    When *cache* is None, ``REPRO_CACHE_DIR`` (if set) provides one; the
    worker count only affects wall-clock time, never the result, so it is
    not part of the cache key.
    """
    config = config or ClusterConfig()
    if cache is None:
        cache = ResultCache.from_env(expected=FleetResult)
    key = fleet_key(config) if cache is not None else None
    if cache is not None:
        cached = cache.get(key)
        if cached is not None:
            return cached
    result = ClusterSimulation(config).run(workers=workers)
    if cache is not None:
        cache.put(key, result)
    return result
