"""The fleet engine: churn, placement, consolidation, parallel stepping.

One :class:`ClusterSimulation` drives N hosts epoch by epoch:

1. the epoch's trace events are applied — arrivals go through the
   configured placement policy, departures free their VM (leaving the
   host-side holes behind), resizes balloon;
2. every ``consolidation.every`` epochs the controller runs a Neat-style
   consolidation pass (overload shedding, underload draining) whose moves
   are live migrations through :func:`repro.cluster.migration.migrate_out`
   / :func:`~repro.cluster.migration.migrate_in`;
3. every host steps one epoch.

Hosts live on a :class:`~repro.exec.actors.ActorPool`: each host is owned
by one worker for the whole run, so host graphs never travel (except a
migrating tenant, which is the point of a migration).  On the **fused
protocol** (``ClusterConfig.fused_epochs``, the default) per-epoch
traffic collapses to one round-trip per worker: the controller decides
the epoch's churn events up front — patching its own
:class:`~repro.cluster.host.HostView` copies with the exact, locally
computable effect of each arrival — and ships the event ops together
with the step command as a single batch per worker.  Views come back as
changed-field deltas, and per-epoch records stay spooled inside the
workers, drained as one compressed blob every ``spool_epochs``.  The
reference protocol (``fused_epochs=False``) keeps the original
blocking-call-per-event shape selectable forever, and the two are
bit-identical — as are serial (``workers=1``, hosts in-process) and
parallel runs of the same seed, because the controller makes every
decision from the views alone.

When parallelism cannot win, the engine does not pay for it: fleets
smaller than ``REPRO_MIN_PARALLEL`` hosts never spawn a pool (mirroring
``run_cells``), single-core sandboxes drop to in-process hosts up front,
and an adaptive first-epoch measurement retracts the pool when IPC
overhead exceeds what parallel stepping can save.

``run_cluster`` wraps a run with the content-keyed result cache, exactly
like ``run_cells`` does for single-host experiment cells.
"""

from __future__ import annotations

import hashlib
import json
import os
import time
from dataclasses import asdict, replace

from repro import obs
from repro.cluster.config import ClusterConfig
from repro.cluster.host import Host, HostView, apply_view_delta
from repro.cluster.migration import build_record, migrate_in, migrate_out
from repro.cluster.placement import make_placement
from repro.cluster.results import (
    FleetResult,
    HostEpochRecord,
    TenantEpochRecord,
    decode_records,
    encode_records,
)
from repro.cluster.trace import TraceEvent, build_trace
from repro.exec.actors import ActorPool
from repro.exec.cache import ResultCache, code_version
from repro.exec.pool import min_parallel_threshold, resolve_workers
from repro.mem.layout import MIB, PAGE_SIZE
from repro.workloads import Workload, make_workload

__all__ = [
    "DEFAULT_SPOOL_EPOCHS",
    "MIN_PARALLEL_HOSTS",
    "ClusterSimulation",
    "fleet_key",
    "run_cluster",
]

#: Smallest fleet worth a process pool: below this the per-epoch IPC and
#: pool startup dominate what a handful of hosts can save by stepping
#: concurrently.  ``REPRO_MIN_PARALLEL`` overrides (same env var
#: ``run_cells`` honours for cells).
MIN_PARALLEL_HOSTS = 4

#: Epochs a worker spools records for between bulk drains.  Sized so one
#: drain (tens of records per host, compressed) dwarfs pipe latency
#: while keeping worker memory bounded; ``REPRO_SPOOL_EPOCHS`` or
#: ``ClusterConfig.spool_epochs`` override.
DEFAULT_SPOOL_EPOCHS = 8


def _env_int(name: str, default: int) -> int:
    try:
        return int(os.environ.get(name, "").strip())
    except ValueError:
        return default


def _resolve_spool(config: ClusterConfig) -> int:
    if config.spool_epochs is not None and config.spool_epochs > 0:
        return config.spool_epochs
    return max(1, _env_int("REPRO_SPOOL_EPOCHS", DEFAULT_SPOOL_EPOCHS))


def _resolve_adaptive(config: ClusterConfig) -> bool:
    raw = os.environ.get("REPRO_FLEET_ADAPTIVE", "").strip()
    if raw:
        return raw != "0"
    return config.adaptive_parallel


# ----------------------------------------------------------------------
# Actor functions: run on the worker that owns the host.  Module-level so
# the pool can pickle them by reference.  The ``_act_*`` trio returning
# fresh views is the reference protocol; the ``_queue_*`` variants return
# nothing (the controller already knows, or will learn from the fused
# step's view delta) so queued churn ops add no reply traffic.
# ----------------------------------------------------------------------


def _act_step(
    host: Host, epoch: int
) -> tuple[list[HostEpochRecord], list[TenantEpochRecord], HostView]:
    host.step_epoch(epoch)
    host_records, tenant_records = host.drain_records()
    return host_records, tenant_records, host.publish_view()


def _act_add_tenant(
    host: Host, ordinal: int, guest_mib: int, workload: Workload, epoch: int
) -> HostView:
    host.add_tenant(ordinal, guest_mib, workload, epoch)
    return host.publish_view()


def _act_destroy_tenant(host: Host, ordinal: int) -> HostView:
    host.destroy_tenant(ordinal)
    return host.publish_view()


def _act_resize_tenant(
    host: Host, ordinal: int, grow: bool, fraction: float
) -> HostView:
    host.resize_tenant(ordinal, grow, fraction)
    return host.publish_view()


def _queue_add_tenant(
    host: Host, ordinal: int, guest_mib: int, workload_name: str, epoch: int
) -> None:
    # The worker instantiates the workload from its registry name — a
    # deterministic factory — so arrivals ship a short string instead of
    # a pickled workload model.
    host.add_tenant(ordinal, guest_mib, make_workload(workload_name), epoch)


def _queue_destroy_tenant(host: Host, ordinal: int) -> None:
    host.destroy_tenant(ordinal)


def _queue_resize_tenant(
    host: Host, ordinal: int, grow: bool, fraction: float
) -> None:
    host.resize_tenant(ordinal, grow, fraction)


def _act_refresh_view(host: Host, deltas: bool) -> tuple:
    return host.publish_view_payload(deltas)


def _act_step_fused(host: Host, epoch: int, deltas: bool) -> tuple:
    host.step_epoch(epoch)
    return host.publish_view_payload(deltas)


def _act_migrate_out_fused(
    host: Host, ordinal: int, migration
) -> tuple[tuple, tuple]:
    """Source half for :meth:`ActorPool.transfer`: the tenant payload
    goes straight to the destination worker; the controller gets only
    the resident-set size, the copy schedule and the view."""
    tenant, state, runs, schedule, view = migrate_out(host, ordinal, migration)
    resident = sum(count for _, count in runs)
    return (tenant, state, runs), (resident, schedule, view)


def _act_migrate_in_fused(host: Host, payload: tuple, migration) -> HostView:
    tenant, state, runs = payload
    return migrate_in(host, tenant, state, runs, migration)


def _drain_worker_spools(states: dict[int, Host], remote: bool) -> tuple:
    """Per-worker epilogue: drain every owned host's record spool into
    ONE encoded blob — records compress far better pooled than per host
    (shared field names and layouts), and one transfer per worker beats
    one per host.

    The worker's telemetry snapshot piggybacks on the same reply
    (``(records, obs_blob)``), so cross-process telemetry costs zero
    extra round-trips.  In-process pools return ``None`` for the blob:
    they already share the controller's registry, and snapshotting it
    here would drain the controller's own telemetry into itself.
    """
    host_records = []
    tenant_records = []
    for index in sorted(states):
        drained_hosts, drained_tenants = states[index].drain_records()
        host_records.extend(drained_hosts)
        tenant_records.extend(drained_tenants)
    records = encode_records(host_records, tenant_records, compress=remote)
    return records, obs.snapshot_blob() if remote else None


def _reset_worker_obs(states: dict[int, Host]) -> None:
    """Post-scatter epilogue: forked workers inherit the controller's
    telemetry (fork copies the module singleton); start them from a clean
    registry so spooled snapshots carry only worker-side data."""
    obs.reset()
    obs.clear_context()


def _drain_worker_obs(states: dict[int, Host]) -> bytes | None:
    """Final-sweep epilogue: detach whatever telemetry the worker still
    holds (reference protocol, or a retraction before the first fused
    spool drain)."""
    return obs.snapshot_blob()


class ClusterSimulation:
    """One fleet simulation: N hosts, a churn trace, a placement policy."""

    def __init__(self, config: ClusterConfig | None = None) -> None:
        self.config = config or ClusterConfig()
        if self.config.hosts <= 0:
            raise ValueError("at least one host required")
        self.hosts = [Host(i, self.config) for i in range(self.config.hosts)]
        self.placement = make_placement(self.config.placement)
        self.trace = build_trace(self.config)
        self._events: dict[int, list[TraceEvent]] = {}
        for event in self.trace:
            self._events.setdefault(event.epoch, []).append(event)
        #: The controller's picture of each host; all placement and
        #: consolidation decisions read this.  Updated by every view the
        #: workers publish, plus the controller's own exact patches for
        #: queued arrivals on the fused protocol.
        self._views: list[HostView] = [host.summary() for host in self.hosts]
        #: ordinal -> index of the host currently running the VM.
        self._vm_host: dict[int, int] = {}
        #: ordinal -> guest size in pages (the commitment a migration
        #: must find room for).
        self._guest_pages: dict[int, int] = {}
        #: Per-host committed pages and the committed==0 available-pages
        #: baseline, so the controller can patch ``available_pages``
        #: without a round-trip (the commitment model is controller
        #: state, not host state).
        self._committed = [0] * self.config.hosts
        self._avail_base = [view.available_pages for view in self._views]
        #: Per-host consolidation scores (overloaded?, underloaded?,
        #: cheapest tenant), None = dirty.  Every view update goes through
        #: :meth:`_set_view`, which invalidates the score only when the
        #: view actually changed — so between consolidation passes only
        #: hosts touched by arrivals, departures, resizes, migrations or
        #: state-changing steps are re-scored.
        self._scores: list[tuple | None] = [None] * self.config.hosts
        #: Spooled record chunks awaiting an ordered merge, as
        #: ``(host_records, tenant_records)`` per drained host.
        self._spooled: list[tuple] = []
        self._spool_every = _resolve_spool(self.config)
        #: Wire traffic per epoch (controller<->workers, both ways); all
        #: zeros for in-process runs.  Diagnostics, deliberately kept off
        #: the (serial==parallel comparable) FleetResult.
        self.ipc_bytes_epochs: list[int] = []
        #: Bulk bytes moved over direct worker-to-worker pipes (fused
        #: migrations) — the data plane the controller never serialises.
        self.ipc_peer_bytes = 0
        self.result = FleetResult(
            system=self.config.system,
            placement=self.config.placement,
            hosts=self.config.hosts,
            epochs=self.config.epochs,
            seed=self.config.seed,
        )

    @property
    def ipc_bytes_per_epoch(self) -> float:
        """Mean controller<->worker bytes per epoch of the last run."""
        if not self.ipc_bytes_epochs:
            return 0.0
        return sum(self.ipc_bytes_epochs) / len(self.ipc_bytes_epochs)

    # ------------------------------------------------------------------
    # Run loop
    # ------------------------------------------------------------------

    def run(self, workers: int | None = None) -> FleetResult:
        """Run all epochs; *workers* > 1 steps hosts on a process pool."""
        config = self.config
        adaptive = _resolve_adaptive(config)
        pool = ActorPool(
            self._effective_workers(workers, adaptive),
            compress_wire=config.wire_compression,
        )
        pool.scatter(self.hosts)
        self._obs_reset_workers(pool)
        self._spool_every = _resolve_spool(config)
        self.ipc_bytes_epochs = []
        telemetry, recorder, installed_monitor = self._obs_attach_health(pool)
        try:
            for epoch in range(config.epochs):
                pool.drain_window.clear()
                bytes_before = pool.bytes_sent + pool.bytes_received
                started = time.perf_counter()
                obs.set_context(host=None, epoch=epoch)
                with obs.span("fleet.epoch"):
                    if config.fused_epochs:
                        self._epoch_fused(pool, epoch)
                    else:
                        self._epoch_reference(pool, epoch)
                wall = time.perf_counter() - started
                self.ipc_bytes_epochs.append(
                    pool.bytes_sent + pool.bytes_received - bytes_before
                )
                if (
                    epoch == 0
                    and adaptive
                    and not pool.is_local
                    and self._parallel_cannot_win(pool, wall)
                ):
                    # Retraction discards the worker processes; pull
                    # their telemetry home first or epoch 0 goes dark.
                    self._obs_sweep_workers(pool)
                    pool.retract()
            # Bring the final host states home so callers can inspect
            # them the same way after serial and parallel runs.
            self.ipc_peer_bytes = pool.peer_bytes
            if not config.fused_epochs:
                # The fused protocol's last spool drain already carried
                # the workers' final snapshots; the reference protocol
                # never spools, so sweep once before the states come home.
                self._obs_sweep_workers(pool)
            self.hosts = pool.gather()
        except BaseException as error:
            if recorder is not None:
                recorder.dump("exception", config=config, error=error)
            raise
        finally:
            if installed_monitor and telemetry is not None:
                telemetry.monitor = None
            pool.close()
        return self.result

    def _obs_attach_health(self, pool: ActorPool):
        """Install the health watchdogs for this run (controller only).

        Workers never carry a monitor — ``_obs_reset_workers`` rebuilt
        their registries bare — so each host's stream is audited exactly
        once, in its canonical per-host order, whatever the process
        layout.  With a trace directory configured, a flight recorder is
        armed on watchdog breaches and worker exceptions.
        """
        telemetry = obs.get()
        if telemetry is None:
            return None, None, False
        from repro.obs.health import FlightRecorder, HealthMonitor

        installed = False
        if telemetry.monitor is None:
            telemetry.monitor = HealthMonitor()
            installed = True
        out_dir = obs.trace_out_dir()
        recorder = None
        if out_dir is not None:
            recorder = FlightRecorder(telemetry, out_dir)
            config = self.config
            telemetry.monitor.on_breach = (
                lambda finding: recorder.breach(finding, config=config)
            )
            pool.on_failure = lambda error: recorder.dump(
                "worker-exception", config=config, error=error
            )
        return telemetry, recorder, installed

    def _obs_reset_workers(self, pool: ActorPool) -> None:
        """One post-scatter round-trip (telemetry on, real pool only)."""
        if obs.enabled() and not pool.is_local:
            pool.submit([], each_worker=(_reset_worker_obs, ()))
            pool.drain()

    def _obs_sweep_workers(self, pool: ActorPool) -> None:
        """Merge every worker's outstanding telemetry snapshot."""
        if obs.enabled() and not pool.is_local:
            pool.submit([], each_worker=(_drain_worker_obs, ()))
            pool.drain()
            for blob in pool.extras:
                obs.merge_blob(blob)

    def _effective_workers(self, workers: int | None, adaptive: bool) -> int:
        workers = resolve_workers(workers)
        if workers <= 1:
            return workers
        # Tiny fleets never spawn a pool at all: per-epoch IPC plus pool
        # startup dominates what so few hosts can overlap (the fleet
        # analogue of run_cells' MIN_PARALLEL_CELLS gate).
        if len(self.hosts) < min_parallel_threshold(MIN_PARALLEL_HOSTS):
            return 1
        # Nothing to overlap with: a single-core sandbox timeshares the
        # workers and pays the IPC on top.
        if adaptive and (os.cpu_count() or 1) < 2:
            return 1
        return workers

    def _parallel_cannot_win(self, pool: ActorPool, wall: float) -> bool:
        """First-epoch measurement: does IPC overhead eat the overlap?

        Comparing the epoch's wall-clock against the workers' summed
        compute answers whether this (machine, fleet, protocol) triple
        can beat the in-process loop: parallel wins only while the
        overhead beyond the critical path stays below the compute it
        takes off the controller's thread.
        """
        ideal = sum(stats.ideal_parallel for stats in pool.drain_window)
        serial = sum(stats.serial_estimate for stats in pool.drain_window)
        return wall - ideal >= serial - ideal

    # ------------------------------------------------------------------
    # Fused protocol: one round-trip per worker per epoch
    # ------------------------------------------------------------------

    def _epoch_fused(self, pool: ActorPool, epoch: int) -> None:
        consolidation = self.config.consolidation
        consolidating = (
            consolidation.every > 0
            and epoch > 0
            and epoch % consolidation.every == 0
        )
        deltas = self.config.view_deltas
        ops: list[tuple] = []
        arrivals: list[TraceEvent] = []
        # Trace order within an epoch is departures, resizes, then
        # arrivals — so arrivals (the only events whose *decision* reads
        # views) always come after the ops queued here.
        for event in self._events.get(epoch, ()):
            if event.kind == "arrive":
                arrivals.append(event)
                continue
            if event.ordinal not in self._vm_host:
                continue
            index = self._vm_host[event.ordinal]
            if event.kind == "depart":
                ops.append((index, _queue_destroy_tenant, (event.ordinal,)))
                self._committed[index] -= self._guest_pages.pop(event.ordinal)
                del self._vm_host[event.ordinal]
                # ``on`` rather than ``host``: the envelope's host slot
                # is the *emitting* process (the controller, None here).
                obs.emit_at(
                    "fleet.depart", None, epoch, ordinal=event.ordinal, on=index
                )
            else:
                ops.append((
                    index,
                    _queue_resize_tenant,
                    (event.ordinal, event.grow, event.delta_fraction),
                ))
                obs.emit_at(
                    "fleet.resize",
                    None,
                    epoch,
                    ordinal=event.ordinal,
                    on=index,
                    grow=event.grow,
                )
        if ops and (arrivals or consolidating):
            # Departures and resizes change host state in ways only the
            # hosts know (freed frames, buddy contiguity), so the views
            # placement and consolidation are about to read must be
            # refreshed — one round-trip for all queued ops plus one
            # view payload per touched host.
            self._flush(pool, ops, deltas)
            ops = []
        for event in arrivals:
            self._queue_arrival(event, epoch, ops)
        if consolidating:
            if ops:
                # Arrivals must land before migrations may move them
                # (and the reference protocol consolidates after all
                # events); their view effect is already patched in, so
                # no refresh is needed.
                pool.submit(ops)
                pool.drain()
                ops = []
            self._consolidate(pool, epoch)
        drain_spool = (
            (epoch + 1) % self._spool_every == 0
            or epoch == self.config.epochs - 1
        )
        step_args = (epoch, deltas)
        for index in range(len(self.hosts)):
            ops.append((index, _act_step_fused, step_args))
        pool.submit(
            ops,
            each_worker=(
                (_drain_worker_spools, (not pool.is_local,))
                if drain_spool
                else None
            ),
        )
        outputs = pool.drain()
        for view_payload in outputs[len(ops) - len(self.hosts):]:
            self._ingest_view(view_payload)
        if drain_spool:
            for records_payload, obs_blob in pool.extras:
                self._spooled.append(decode_records(records_payload))
                obs.merge_blob(obs_blob)
            self._merge_spooled()

    def _flush(self, pool: ActorPool, ops: list[tuple], deltas: bool) -> None:
        """Run queued ops and refresh the views of every touched host."""
        touched = sorted({index for index, _, _ in ops})
        pool.submit(
            ops + [(index, _act_refresh_view, (deltas,)) for index in touched]
        )
        for payload in pool.drain()[len(ops):]:
            self._ingest_view(payload)

    def _queue_arrival(
        self, event: TraceEvent, epoch: int, ops: list[tuple]
    ) -> None:
        # Reserve the full guest size, not the workload footprint: guest
        # munmap never returns host frames (Section 6.3), so a VM's host
        # usage grows toward its guest size over its lifetime.  RAM is
        # not overcommitted, as on real clouds.
        guest_pages = event.guest_mib * MIB // PAGE_SIZE
        needed = int(guest_pages * self.config.placement_headroom)
        index = self.placement.select(self._views, needed)
        if index is None:
            self.result.placement_failures += 1
            obs.emit_at(
                "fleet.place_fail",
                None,
                epoch,
                ordinal=event.ordinal,
                needed=needed,
            )
            return
        obs.emit_at(
            "fleet.place",
            None,
            epoch,
            ordinal=event.ordinal,
            workload=event.workload,
            guest_mib=event.guest_mib,
            on=index,
        )
        ops.append((
            index,
            _queue_add_tenant,
            (event.ordinal, event.guest_mib, event.workload, epoch),
        ))
        self._vm_host[event.ordinal] = index
        self._guest_pages[event.ordinal] = guest_pages
        self._committed[index] += guest_pages
        # Patch the controller's view with the exact effect of the
        # queued add, so later decisions in this epoch see what a
        # blocking round-trip would have returned: adding a tenant only
        # shrinks committed capacity and registers an (empty) resident
        # set — it allocates nothing — which the fused-vs-reference
        # equivalence test pins down.
        view = self._views[index]
        self._set_view(replace(
            view,
            available_pages=self._avail_base[index]
            - int(self._committed[index] * self.config.placement_headroom),
            residents=tuple(sorted(view.residents + ((event.ordinal, 0),))),
        ))

    def _ingest_view(self, payload: tuple) -> None:
        if payload[0] == "full":
            view = payload[1]
        else:
            _, index, mask, values = payload
            view = apply_view_delta(self._views[index], mask, values)
        self._set_view(view)

    def _set_view(self, view: HostView) -> None:
        """Install a host view, invalidating its cached consolidation
        score only if the view actually changed."""
        index = view.index
        if self._scores[index] is not None and view != self._views[index]:
            self._scores[index] = None
        self._views[index] = view

    def _merge_spooled(self) -> None:
        """Append drained records in the reference protocol's order.

        Hosts drain in index order and keep their records in generation
        order, so a stable sort by ``(epoch, host)`` reproduces exactly
        the order the per-epoch protocol appends in: epoch-major,
        host-minor, generation order within.
        """
        if not self._spooled:
            return
        host_records: list[HostEpochRecord] = []
        tenant_records: list[TenantEpochRecord] = []
        for drained_hosts, drained_tenants in self._spooled:
            host_records.extend(drained_hosts)
            tenant_records.extend(drained_tenants)
        self._spooled = []
        host_records.sort(key=lambda record: (record.epoch, record.host))
        tenant_records.sort(key=lambda record: (record.epoch, record.host))
        self.result.host_epochs.extend(host_records)
        self.result.tenant_epochs.extend(tenant_records)

    # ------------------------------------------------------------------
    # Reference protocol: one blocking call per event, records and full
    # views every epoch.  Kept selectable forever as the semantic anchor
    # the fused path must stay bit-identical to.
    # ------------------------------------------------------------------

    def _epoch_reference(self, pool: ActorPool, epoch: int) -> None:
        consolidation = self.config.consolidation
        self._apply_events(pool, epoch)
        if (
            consolidation.every > 0
            and epoch > 0
            and epoch % consolidation.every == 0
        ):
            self._consolidate(pool, epoch)
        outputs = pool.map(_act_step, [(epoch,)] * len(self.hosts))
        for host_records, tenant_records, view in outputs:
            self.result.host_epochs.extend(host_records)
            self.result.tenant_epochs.extend(tenant_records)
            self._set_view(view)

    # ------------------------------------------------------------------
    # Churn events (reference protocol)
    # ------------------------------------------------------------------

    def _apply_events(self, pool: ActorPool, epoch: int) -> None:
        for event in self._events.get(epoch, ()):
            if event.kind == "arrive":
                self._arrive(pool, event, epoch)
            elif event.ordinal in self._vm_host:
                index = self._vm_host[event.ordinal]
                if event.kind == "depart":
                    view = pool.apply(_act_destroy_tenant, index, event.ordinal)
                    self._committed[index] -= self._guest_pages.pop(
                        event.ordinal
                    )
                    del self._vm_host[event.ordinal]
                    obs.emit_at(
                        "fleet.depart",
                        None,
                        epoch,
                        ordinal=event.ordinal,
                        on=index,
                    )
                else:
                    view = pool.apply(
                        _act_resize_tenant,
                        index,
                        event.ordinal,
                        event.grow,
                        event.delta_fraction,
                    )
                    obs.emit_at(
                        "fleet.resize",
                        None,
                        epoch,
                        ordinal=event.ordinal,
                        on=index,
                        grow=event.grow,
                    )
                self._set_view(view)

    def _arrive(self, pool: ActorPool, event: TraceEvent, epoch: int) -> None:
        guest_pages = event.guest_mib * MIB // PAGE_SIZE
        needed = int(guest_pages * self.config.placement_headroom)
        index = self.placement.select(self._views, needed)
        if index is None:
            self.result.placement_failures += 1
            obs.emit_at(
                "fleet.place_fail",
                None,
                epoch,
                ordinal=event.ordinal,
                needed=needed,
            )
            return
        obs.emit_at(
            "fleet.place",
            None,
            epoch,
            ordinal=event.ordinal,
            workload=event.workload,
            guest_mib=event.guest_mib,
            on=index,
        )
        workload = make_workload(event.workload)
        self._set_view(pool.apply(
            _act_add_tenant, index, event.ordinal, event.guest_mib, workload, epoch
        ))
        self._vm_host[event.ordinal] = index
        self._guest_pages[event.ordinal] = guest_pages
        self._committed[index] += guest_pages

    # ------------------------------------------------------------------
    # Consolidation (OpenStack-Neat-style: overload shedding, then
    # underload draining; every decision deterministic — hosts in index
    # order, tenants in ordinal order, budget-capped)
    # ------------------------------------------------------------------

    def _consolidate(self, pool: ActorPool, epoch: int) -> None:
        with obs.span("fleet.consolidate"):
            self._consolidate_body(pool, epoch)

    def _host_score(self, index: int) -> tuple:
        """(overloaded, underloaded, cheapest ordinal) of the host's
        current view; cached per host and recomputed only when
        :meth:`_set_view` saw the view change (``fast_kernels`` off
        recomputes every time)."""
        if self.config.fast_kernels:
            score = self._scores[index]
            if score is not None:
                return score
        view = self._views[index]
        consolidation = self.config.consolidation
        # The cheapest VM to move: the smallest resident set.
        cheapest = (
            min(view.residents, key=lambda r: (r[1], r[0]))[0]
            if view.residents
            else None
        )
        score = (
            bool(view.residents)
            and (
                view.utilization > consolidation.overload
                # A host at critical memory pressure sheds load even if
                # raw utilization looks fine (free pages say nothing
                # about swap churn on an overcommitted host).
                or view.pressure >= 1.0
            ),
            bool(view.residents) and view.utilization < consolidation.underload,
            cheapest,
        )
        if self.config.fast_kernels:
            self._scores[index] = score
        return score

    def _consolidate_body(self, pool: ActorPool, epoch: int) -> None:
        consolidation = self.config.consolidation
        budget = consolidation.max_migrations
        for index in range(len(self._views)):
            while budget > 0:
                with obs.span("consolidate.score"):
                    overloaded, _, cheapest = self._host_score(index)
                if not overloaded:
                    break
                with obs.span("consolidate.evict"):
                    moved = self._migrate(pool, cheapest, index, epoch, "overload")
                if not moved:
                    break
                budget -= 1
        for index in range(len(self._views)):
            if budget <= 0:
                break
            with obs.span("consolidate.score"):
                _, underloaded, _ = self._host_score(index)
            if not underloaded:
                continue
            view = self._views[index]
            for ordinal, _ in view.residents:
                if budget <= 0:
                    break
                with obs.span("consolidate.evict"):
                    moved = self._migrate(pool, ordinal, index, epoch, "underload")
                if not moved:
                    break
                budget -= 1

    def _migrate(
        self, pool: ActorPool, ordinal: int, source: int, epoch: int, reason: str
    ) -> bool:
        needed = int(
            self._guest_pages[ordinal] * self.config.placement_headroom
        )
        destination = self.placement.select(
            self._views, needed, exclude=frozenset({source})
        )
        if destination is None:
            return False
        migration = self.config.migration
        if self.config.fused_epochs:
            # Data-plane migration: the tenant graph moves worker-to-
            # worker; the controller sees two commands and two compact
            # replies.
            (resident, schedule, src_view), dst_view = pool.transfer(
                source,
                destination,
                _act_migrate_out_fused,
                (ordinal, migration),
                _act_migrate_in_fused,
                (migration,),
            )
            self._set_view(src_view)
            self._set_view(dst_view)
            record = build_record(
                epoch=epoch,
                ordinal=ordinal,
                source=source,
                destination=destination,
                reason=reason,
                schedule=schedule,
                resident_pages=resident,
            )
        else:
            tenant, state, runs, schedule, src_view = pool.apply(
                migrate_out, source, ordinal, migration
            )
            self._set_view(src_view)
            self._set_view(pool.apply(
                migrate_in, destination, tenant, state, runs, migration
            ))
            record = build_record(
                epoch=epoch,
                ordinal=ordinal,
                source=source,
                destination=destination,
                reason=reason,
                schedule=schedule,
                runs=runs,
            )
        self.result.migrations.append(record)
        obs.emit_at(
            "fleet.migrate",
            None,
            epoch,
            ordinal=ordinal,
            source=source,
            destination=destination,
            reason=reason,
            resident=record.resident_pages,
            rounds=record.rounds,
            copied=record.copied_pages,
        )
        guest_pages = self._guest_pages[ordinal]
        self._committed[source] -= guest_pages
        self._committed[destination] += guest_pages
        self._vm_host[ordinal] = destination
        return True


# ----------------------------------------------------------------------
# Cached entry point
# ----------------------------------------------------------------------

#: ClusterConfig fields that select bit-identical execution strategies;
#: excluded from the content key so every combination shares cache
#: entries (enforced by the protocol-equivalence tests).
EXECUTION_STRATEGY_FIELDS = (
    "batch_faults",
    "incremental_index",
    "fast_kernels",
    "fused_epochs",
    "view_deltas",
    "spool_epochs",
    "adaptive_parallel",
    "wire_compression",
)


def fleet_key(config: ClusterConfig) -> str:
    """Content key of one fleet run: same key == same result.

    Like :func:`repro.exec.cache.cell_key`, the bit-identical fast-path
    knobs (:data:`EXECUTION_STRATEGY_FIELDS` — fault batching, the
    incremental index, and the fused IPC protocol's fusion/delta/spool/
    adaptive switches) are excluded so all settings share cache entries,
    and the code version is folded in so editing the simulator
    invalidates stale results.
    """
    payload = asdict(config)
    for field_name in EXECUTION_STRATEGY_FIELDS:
        payload.pop(field_name, None)
    raw = json.dumps(
        {"cluster": payload, "code": code_version()},
        sort_keys=True,
        default=repr,
    ).encode()
    return hashlib.sha256(raw).hexdigest()


def run_cluster(
    config: ClusterConfig | None = None,
    workers: int | None = None,
    cache: ResultCache | None = None,
) -> FleetResult:
    """Run (or load) one fleet simulation.

    When *cache* is None, ``REPRO_CACHE_DIR`` (if set) provides one; the
    worker count only affects wall-clock time, never the result, so it is
    not part of the cache key.
    """
    config = config or ClusterConfig()
    if cache is None:
        cache = ResultCache.from_env(expected=FleetResult)
    key = fleet_key(config) if cache is not None else None
    if cache is not None:
        cached = cache.get(key)
        if cached is not None:
            return cached
    result = ClusterSimulation(config).run(workers=workers)
    if cache is not None:
        cache.put(key, result)
    return result
