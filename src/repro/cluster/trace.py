"""Seeded VM lifecycle (churn) trace generation.

The entire fleet's tenancy dynamics are decided up front: ``build_trace``
expands a :class:`~repro.cluster.config.ChurnConfig` into a flat list of
:class:`TraceEvent`, using one private ``random.Random(seed)`` stream with
a fixed draw order.  Because the trace is data — not decisions made while
hosts step — the same seed yields the same arrivals, departures and
resizes whether the hosts later step serially or on a process pool.

VM ordinals are fleet-unique arrival indices and double as the VM ids on
whichever host a tenant currently lives (hosts never mint ids of their
own), so a VM keeps its identity across live migrations.
"""

from __future__ import annotations

import random
from dataclasses import dataclass

from repro.cluster.config import ClusterConfig
from repro.workloads import make_workload

__all__ = ["TraceEvent", "build_trace"]


@dataclass(frozen=True)
class TraceEvent:
    """One lifecycle event, applied before the epoch it names.

    ``kind`` is ``"arrive"`` (place a new VM: ``guest_mib``/``workload``
    are set), ``"depart"`` (destroy the VM, leaving its host-side holes
    behind) or ``"resize"`` (balloon: ``grow`` deflates a previous
    inflate, otherwise inflate by ``delta_fraction`` of the guest size).
    """

    epoch: int
    kind: str
    ordinal: int
    guest_mib: int = 0
    workload: str = ""
    grow: bool = False
    delta_fraction: float = 0.0


def build_trace(config: ClusterConfig) -> list[TraceEvent]:
    """Expand the churn spec into a deterministic event list.

    Draw order per epoch is fixed: departures over live VMs in ordinal
    order, then resizes over the survivors in ordinal order, then
    arrivals.  VMs get one grace epoch before they may depart, so every
    tenant runs at least once.
    """
    churn = config.churn
    rng = random.Random(config.seed ^ 0xC10C)
    events: list[TraceEvent] = []
    live: dict[int, int] = {}  # ordinal -> arrival epoch
    next_ordinal = 0

    def arrive(epoch: int) -> None:
        nonlocal next_ordinal
        ordinal = next_ordinal
        next_ordinal += 1
        live[ordinal] = epoch
        workload = rng.choice(churn.workload_pool)
        # Clouds size VMs to their tenant: the drawn flavour is a floor,
        # raised to 2x the workload footprint so churn transients, guest
        # noise and page-table bloat cannot OOM the guest.
        guest_mib = max(
            rng.choice(churn.guest_mib_choices),
            2 * int(make_workload(workload).footprint_mib),
        )
        events.append(
            TraceEvent(
                epoch=epoch,
                kind="arrive",
                ordinal=ordinal,
                guest_mib=guest_mib,
                workload=workload,
            )
        )

    for _ in range(min(churn.initial_vms, churn.max_vms)):
        arrive(0)

    for epoch in range(1, config.epochs):
        for ordinal in sorted(live):
            if live[ordinal] >= epoch:  # grace epoch for fresh arrivals
                continue
            if rng.random() < churn.departure_rate:
                del live[ordinal]
                events.append(TraceEvent(epoch=epoch, kind="depart", ordinal=ordinal))
        for ordinal in sorted(live):
            if rng.random() < churn.resize_rate:
                events.append(
                    TraceEvent(
                        epoch=epoch,
                        kind="resize",
                        ordinal=ordinal,
                        grow=rng.random() < 0.5,
                        delta_fraction=churn.resize_fraction,
                    )
                )
        arrivals = int(churn.arrivals_per_epoch)
        if rng.random() < churn.arrivals_per_epoch - arrivals:
            arrivals += 1
        for _ in range(arrivals):
            if len(live) >= churn.max_vms:
                break
            arrive(epoch)

    return events
