"""One fleet host: a :class:`~repro.hypervisor.platform.Platform` plus its
tenants, noise agent, (optional) Gemini runtime and per-epoch stepping.

A :class:`Host` is fully self-contained and picklable: the cluster engine
can ship it to a worker process, step it there, and take the mutated copy
back — with results identical to stepping in place, because every source
of randomness a host touches (its noise stream, its tenants' workload
RNGs) lives inside the host and `random.Random` pickles its exact state.

``step_epoch`` mirrors :meth:`repro.sim.engine.Simulation._epoch` —
workloads run, ledger deltas are split between tenants, translation
segments are classified and TLB-evaluated, daemons run between epochs —
reusing the engine's shared helpers so the single-host and fleet paths
cannot drift apart.
"""

from __future__ import annotations

import zlib
from dataclasses import dataclass, field, fields, replace
from typing import TYPE_CHECKING

from repro import obs
from repro.cluster.results import (
    HostEpochRecord,
    TenantEpochRecord,
    encode_records,
)
from repro.core.runtime import GeminiRuntime
from repro.hypervisor.balloon import BalloonDriver
from repro.hypervisor.platform import Platform
from repro.hypervisor.vm import PROCESS, VM
from repro.mem.fragmentation import Fragmenter, fmfi
from repro.mem.layout import HUGE_ORDER, PAGES_PER_HUGE
from repro.metrics.alignment import alignment_report
from repro.metrics.performance import epoch_performance
from repro.policies.base import EpochTelemetry
from repro.policies.registry import system_spec
from repro.pressure.controller import PressureController
from repro.sim.engine import build_segments, charge_dedup_cow
from repro.sim.noise import NoiseAgent
from repro.tlb.model import TLBModel
from repro.workloads.base import Workload, WorkloadContext

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.cluster.config import ClusterConfig

__all__ = [
    "Host",
    "HostView",
    "Tenant",
    "apply_view_delta",
    "resident_pages",
    "resident_runs",
]


def resident_runs(vm: VM) -> list[tuple[int, int]]:
    """The VM's resident set as sorted ``(start_gpn, count)`` runs.

    Resident means guest-mapped: pages the guest considers in use.  Stale
    EPT backing under guest-freed pages (the Section 6.3 leftovers) holds
    no data — live migration does not copy it, which makes migration one
    of the few events that sheds it.
    """
    table = vm.guest.table(PROCESS)
    if vm.guest.fast_kernels:
        # Span kernel: huge mappings are already aligned 512-page runs and
        # their guest-physical blocks never overlap base-mapped frames
        # (both come from disjoint gpa-space allocations), so the sorted
        # union of pages equals the sorted merge of the two run lists.
        runs = [
            (gpregion * PAGES_PER_HUGE, PAGES_PER_HUGE)
            for _, gpregion in table.huge_mappings()
        ]
        start = count = 0
        for gpn in sorted({gpn for _, gpn in table.base_mappings()}):
            if count and gpn == start + count:
                count += 1
                continue
            if count:
                runs.append((start, count))
            start, count = gpn, 1
        if count:
            runs.append((start, count))
        runs.sort()
        merged: list[tuple[int, int]] = []
        for rstart, rcount in runs:
            if merged and rstart == merged[-1][0] + merged[-1][1]:
                merged[-1] = (merged[-1][0], merged[-1][1] + rcount)
            else:
                merged.append((rstart, rcount))
        return merged
    gpns: set[int] = set()
    for _, gpregion in table.huge_mappings():
        base = gpregion * PAGES_PER_HUGE
        gpns.update(range(base, base + PAGES_PER_HUGE))
    for _, gpn in table.base_mappings():
        gpns.add(gpn)
    runs: list[tuple[int, int]] = []
    start = count = 0
    for gpn in sorted(gpns):
        if count and gpn == start + count:
            count += 1
            continue
        if count:
            runs.append((start, count))
        start, count = gpn, 1
    if count:
        runs.append((start, count))
    return runs


def resident_pages(vm: VM) -> int:
    return sum(count for _, count in resident_runs(vm))


@dataclass(frozen=True)
class HostView:
    """Snapshot of the scheduler-relevant state of one host.

    The cluster controller makes every placement and consolidation
    decision from these views — never from live host objects — so the
    decisions are identical whether the hosts live in-process or on
    pool workers (where only views travel, not hosts).
    """

    index: int
    total_pages: int
    free_pages: int
    #: Placement capacity left (commitment-based, headroom included).
    available_pages: int
    #: Free pages sitting in huge-aligned buddy blocks.
    aligned_free_pages: int
    #: Size of the largest free physical region.
    largest_free_region: int
    #: Huge pages the host's translation indices report as misaligned.
    misaligned_huge: int
    #: ``(ordinal, resident_pages)`` per tenant, ordinal-sorted.
    residents: tuple[tuple[int, int], ...]
    #: Normalised memory pressure in [0, 1] (0 above the low watermark,
    #: 1 at/below critical; always 0 with the subsystem disabled).
    #: Appended with a default so existing view constructions stay valid.
    pressure: float = 0.0
    #: Pages currently on the host's swap device.
    swapped_pages: int = 0

    @property
    def vms(self) -> int:
        return len(self.residents)

    @property
    def utilization(self) -> float:
        return 1.0 - self.free_pages / self.total_pages


#: Fields a view delta may carry (``index`` identifies, never changes).
#: Deltas address them by position — a bitmask and a value tuple — so no
#: field-name strings ever cross the pipe.
_VIEW_FIELDS = tuple(
    f.name for f in fields(HostView) if f.name != "index"
)


def apply_view_delta(base: HostView, mask: int, values: tuple) -> HostView:
    """Rebuild a full view from *base* plus a changed-fields delta.

    Bit *i* of *mask* says field ``_VIEW_FIELDS[i]`` changed; *values*
    holds the new values of exactly the set bits, in field order.
    """
    changed = {}
    position = 0
    for bit, name in enumerate(_VIEW_FIELDS):
        if mask >> bit & 1:
            changed[name] = values[position]
            position += 1
    return replace(base, **changed)


@dataclass
class Tenant:
    """One VM and everything that travels with it across hosts."""

    ordinal: int
    vm: VM
    workload: Workload
    ctx: WorkloadContext
    balloon: BalloonDriver
    arrived_epoch: int
    epochs_run: int = 0
    guest_snapshot: object = None
    #: Guest-physical fragmenter pins (kept referenced so the pinned
    #: pages stay allocated for the VM's lifetime).
    fragmenter: Fragmenter | None = field(default=None, repr=False)

    @property
    def name(self) -> str:
        return self.vm.name


class Host:
    """A fleet host: platform + tenants + per-host daemons."""

    def __init__(self, index: int, config: "ClusterConfig") -> None:
        self.index = index
        self.config = config
        self.spec = system_spec(config.system)
        self.platform = Platform.with_mib(config.host_mib, self.spec.make_host())
        self.platform.batch_faults = config.batch_faults
        self.platform.use_index = config.incremental_index
        self.platform.fast_kernels = config.fast_kernels
        self.tlb_model = TLBModel(config.tlb, memoize=config.fast_kernels)
        # Distinct noise stream per host: a large odd stride keeps the
        # per-host seeds disjoint from the per-tenant workload seeds.
        self.noise = NoiseAgent(
            self.platform,
            rate=config.noise_rate,
            free_fraction=config.noise_free_fraction,
            seed=config.seed + 7919 * index + 13,
        )
        self.noise.install()
        self.runtime: GeminiRuntime | None = None
        if self.spec.uses_gemini_runtime:
            self.runtime = GeminiRuntime(self.platform, config.gemini)
        #: Memory-pressure controller (None unless configured).  The swap
        #: device RNG is salted by host index so hosts draw independent
        #: latency streams from the same config seed.
        self.pressure: PressureController | None = None
        if config.pressure.enabled:
            self.pressure = PressureController(
                self.platform, config.pressure, salt=index
            )

        self.tenants: dict[int, Tenant] = {}
        self._fragmenters: list[Fragmenter] = []
        if config.fragment_host > 0.0:
            # Fragmentation gradient: host 0 is the oldest (most
            # fragmented) machine, the last host is freshly racked.  The
            # gradient is what makes placement interesting — a fleet of
            # identically-fragmented hosts gives every policy the same
            # aligned capacity everywhere.
            target = config.fragment_host * (config.hosts - index) / config.hosts
            if target > 0.0:
                fragmenter = Fragmenter(
                    self.platform.memory, seed=config.seed + index
                )
                fragmenter.fragment(target)
                self._fragmenters.append(fragmenter)

        #: Pages pinned before any tenant existed (the fragmentation
        #: pins): capacity the scheduler can never promise to a VM.
        self._pinned_pages = (
            self.platform.memory.total_pages - self.platform.memory.free_pages
        )
        self._last_misses = 0.0
        self._host_snapshot = self.platform.host.ledger.snapshot()
        # Records accumulate here (also while stepping inside a worker
        # process) and are drained by the engine — every epoch on the
        # reference protocol, every ``spool_epochs`` on the fused one.
        self._tenant_records: list[TenantEpochRecord] = []
        self._host_records: list[HostEpochRecord] = []
        #: The last view shipped to the controller — the shared baseline
        #: view deltas are encoded against.  Lives on the host so it
        #: travels with it (worker processes, adaptive retraction).
        self._view_baseline: HostView | None = None

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------

    @property
    def free_pages(self) -> int:
        return self.platform.memory.free_pages

    @property
    def utilization(self) -> float:
        memory = self.platform.memory
        return 1.0 - memory.free_pages / memory.total_pages

    @property
    def committed_pages(self) -> int:
        """Host pages promised to tenants (their full guest sizes).

        Guests fault their memory lazily, so physical ``free_pages`` says
        nothing about what is already spoken for — the scheduler places
        against commitments, the way real clouds reserve a flavour's RAM
        at boot rather than overcommitting."""
        return sum(tenant.vm.guest_pages for tenant in self.tenants.values())

    @property
    def available_pages(self) -> int:
        """Placement capacity left: total minus pre-pinned pages minus
        committed (with the configured per-VM headroom for noise and
        page-table bloat).  ``overcommit_ratio`` scales the advertised
        total above physical capacity; the pressure subsystem absorbs the
        difference when commitments are actually touched."""
        total = int(
            (self.platform.memory.total_pages - self._pinned_pages)
            * self.config.overcommit_ratio
        )
        return total - int(self.committed_pages * self.config.placement_headroom)

    def summary(self) -> HostView:
        """The scheduler-facing snapshot of this host."""
        memory = self.platform.memory
        largest = memory.max_free_region()
        misaligned = 0
        for index in self.platform.indices.values():
            report = index.report()
            misaligned += report.guest_huge - report.aligned_guest
            misaligned += report.host_huge - report.aligned_host
        return HostView(
            index=self.index,
            total_pages=memory.total_pages,
            free_pages=memory.free_pages,
            available_pages=self.available_pages,
            aligned_free_pages=memory.free_pages_at_or_above(HUGE_ORDER),
            largest_free_region=largest[1] if largest is not None else 0,
            misaligned_huge=misaligned,
            residents=tuple(
                (ordinal, resident_pages(self.tenants[ordinal].vm))
                for ordinal in sorted(self.tenants)
            ),
            pressure=(
                self.pressure.pressure_signal()
                if self.pressure is not None
                else 0.0
            ),
            swapped_pages=(
                self.pressure.device.total_swapped
                if self.pressure is not None
                else 0
            ),
        )

    def publish_view(self) -> HostView:
        """A full view for the controller, recorded as the new baseline.

        Every view that crosses to the controller goes through here or
        :meth:`publish_view_payload`, so the host-side baseline always
        matches the last view the controller decoded — the invariant the
        delta encoding rests on.
        """
        view = self.summary()
        self._view_baseline = view
        return view

    def publish_view_payload(self, deltas: bool = True) -> tuple:
        """Encode the current view for the wire.

        ``("full", view)`` on the first publish (or with *deltas* off),
        ``("d", index, mask, values)`` afterwards — only fields that
        changed since the last published view travel, addressed by a
        position bitmask rather than name strings, and the controller
        rebuilds the full view with :func:`apply_view_delta`.
        """
        base = self._view_baseline
        view = self.publish_view()
        if not deltas or base is None:
            return ("full", view)
        mask = 0
        values = []
        for bit, name in enumerate(_VIEW_FIELDS):
            value = getattr(view, name)
            if value != getattr(base, name):
                mask |= 1 << bit
                values.append(value)
        return ("d", view.index, mask, tuple(values))

    def drain_records(self) -> tuple[list[HostEpochRecord], list[TenantEpochRecord]]:
        host_records, self._host_records = self._host_records, []
        tenant_records, self._tenant_records = self._tenant_records, []
        return host_records, tenant_records

    def drain_spool(self, compress: bool = True) -> tuple:
        """Drain accumulated records as one wire blob (fused protocol)."""
        host_records, tenant_records = self.drain_records()
        return encode_records(host_records, tenant_records, compress=compress)

    # ------------------------------------------------------------------
    # Tenant lifecycle
    # ------------------------------------------------------------------

    def add_tenant(
        self, ordinal: int, guest_mib: int, workload: Workload, epoch: int
    ) -> Tenant:
        """Place a new VM (the arrival half of the churn generator)."""
        config = self.config
        vm = VM.with_mib(
            ordinal, guest_mib, self.spec.make_guest(), name=f"vm{ordinal}"
        )
        self.platform.attach_vm(vm)
        if self.runtime is not None:
            self.runtime.register_vm(vm)
        fragmenter = None
        if config.fragment_guest > 0.0:
            fragmenter = Fragmenter(vm.gpa_space, seed=config.seed + ordinal)
            fragmenter.fragment(config.fragment_guest)
        # Same per-workload stream derivation as the single-host engine.
        name_salt = zlib.crc32(workload.name.encode()) % 997
        tenant = Tenant(
            ordinal=ordinal,
            vm=vm,
            workload=workload,
            ctx=WorkloadContext(
                self.platform, vm, seed=config.seed + ordinal + name_salt
            ),
            balloon=BalloonDriver(self.platform, vm, alignment_aware=True),
            arrived_epoch=epoch,
            guest_snapshot=vm.guest.ledger.snapshot(),
            fragmenter=fragmenter,
        )
        self.tenants[ordinal] = tenant
        return tenant

    def detach_tenant(self, ordinal: int) -> tuple[Tenant, object]:
        """Remove a tenant keeping its guest-side state (migration source).

        Returns the tenant and its cross-layer runtime state (None for
        non-Gemini systems); host frames are freed, EPT and index torn
        down, noise bookkeeping dropped.
        """
        tenant = self.tenants.pop(ordinal)
        state = None
        if self.pressure is not None:
            # While the VM is still attached: deflates the controller's
            # balloon and discards swap slots (swapped state does not
            # travel; the destination re-faults the resident set).
            self.pressure.forget_vm(tenant.vm.id)
        if self.runtime is not None:
            state = self.runtime.unregister_vm(tenant.vm.id)
        self.platform.detach_vm(tenant.vm)
        self.noise.forget_vm(tenant.vm.id)
        return tenant, state

    def adopt_tenant(self, tenant: Tenant, state: object = None) -> None:
        """Attach a migrated-in tenant (migration destination)."""
        self.platform.attach_vm(tenant.vm)
        if self.runtime is not None:
            self.runtime.adopt_vm(tenant.vm, state)
        tenant.ctx.platform = self.platform
        tenant.balloon.platform = self.platform
        self.tenants[tenant.ordinal] = tenant

    def destroy_tenant(self, ordinal: int) -> int:
        """Departure: free everything, drop the VM.  Returns host pages
        freed — what the departure does *not* free (noise allocations made
        while the tenant ran, neighbours' pages) is the fragmentation the
        churn leaves behind."""
        tenant, _ = self.detach_tenant(ordinal)
        del tenant  # guest-side state (gpa space, tables) dies with it
        return 0

    def resize_tenant(self, ordinal: int, grow: bool, fraction: float) -> int:
        """Balloon the tenant: shrink inflates (releasing host backing,
        demoting huge EPT entries per the balloon's alignment policy),
        grow deflates a previous inflation.  Returns pages moved."""
        tenant = self.tenants[ordinal]
        if grow:
            return tenant.balloon.deflate()
        return tenant.balloon.inflate(int(tenant.vm.guest_pages * fraction))

    # ------------------------------------------------------------------
    # Stepping
    # ------------------------------------------------------------------

    def step_epoch(self, epoch: int) -> None:
        """Run one fleet epoch on this host (cf. Simulation._epoch)."""
        obs.set_context(host=self.index, epoch=epoch)
        with obs.span("host.step"):
            self._step_epoch(epoch)

    def _step_epoch(self, epoch: int) -> None:
        tenants = [self.tenants[ordinal] for ordinal in sorted(self.tenants)]
        with obs.span("host.workloads"):
            for tenant in tenants:
                if tenant.epochs_run == 0:
                    tenant.workload.setup(tenant.ctx)
                tenant.workload.run_epoch(tenant.ctx, tenant.epochs_run)

        epoch_misses = 0.0
        ledger = self.platform.host.ledger
        host_delta = ledger.delta_since(self._host_snapshot)
        self._host_snapshot = ledger.snapshot()
        host_share = 1.0 / len(tenants) if tenants else 0.0
        host_fmfi = fmfi(self.platform.memory)

        with obs.span("host.classify"):
            for tenant in tenants:
                vm, workload = tenant.vm, tenant.workload
                charge_dedup_cow(vm, workload)
                if self.pressure is not None:
                    # Dirty sets follow the tenant's own epoch count (its
                    # access phases), heat decays in fleet-epoch time.
                    self.pressure.log_dirty(
                        vm, workload, epoch, workload_epoch=tenant.epochs_run
                    )
                segments = build_segments(
                    self.platform, vm, workload, tenant.epochs_run
                )
                stats = self.tlb_model.evaluate(segments)
                epoch_misses += stats.misses

                guest_delta = vm.guest.ledger.delta_since(tenant.guest_snapshot)
                tenant.guest_snapshot = vm.guest.ledger.snapshot()
                performance = epoch_performance(
                    tlb_sensitivity=workload.tlb_sensitivity,
                    ops=workload.ops_per_epoch,
                    stats=stats,
                    sync_mm_cycles=guest_delta.sync_cycles
                    + host_delta.sync_cycles * host_share,
                    background_cycles=guest_delta.background_cycles
                    + host_delta.background_cycles * host_share,
                )
                vm_index = self.platform.index_of(vm.id)
                if vm_index is not None:
                    report = vm_index.report()
                else:
                    report = alignment_report(
                        vm.guest.table(PROCESS), self.platform.ept(vm.id)
                    )
                guest_fmfi = fmfi(vm.gpa_space)
                self._tenant_records.append(
                    TenantEpochRecord(
                        epoch=epoch,
                        ordinal=tenant.ordinal,
                        host=self.index,
                        workload=workload.name,
                        tenant_epoch=tenant.epochs_run,
                        performance=performance,
                        alignment=report,
                        fmfi_guest=guest_fmfi,
                    )
                )
                obs.emit(
                    "tenant.epoch",
                    ordinal=tenant.ordinal,
                    workload=workload.name,
                    tenant_epoch=tenant.epochs_run,
                    tlb_misses=round(stats.misses, 3),
                    well_aligned_rate=round(report.well_aligned_rate, 6),
                    fmfi_guest=round(guest_fmfi, 6),
                )
                vm.guest.policy.on_epoch(
                    EpochTelemetry(tenant.epochs_run, stats.misses, guest_fmfi)
                )
                tenant.epochs_run += 1

        self.platform.host.policy.on_epoch(
            EpochTelemetry(epoch, epoch_misses, host_fmfi)
        )
        self._last_misses = epoch_misses
        with obs.span("host.daemons"):
            for tenant in tenants:
                tenant.vm.guest.policy.scan(None)
            self.platform.host.policy.scan(None)
            if self.runtime is not None:
                self.runtime.epoch(now=float(epoch), tlb_misses=self._last_misses)
            if self.pressure is not None:
                self.pressure.run(epoch)

        memory = self.platform.memory
        aligned_free = memory.free_pages_at_or_above(HUGE_ORDER)
        controller = self.pressure
        self._host_records.append(
            HostEpochRecord(
                epoch=epoch,
                host=self.index,
                fmfi=host_fmfi,
                free_pages=memory.free_pages,
                aligned_free_pages=aligned_free,
                total_pages=memory.total_pages,
                vms=len(tenants),
                pressure=(
                    controller.pressure_signal() if controller else 0.0
                ),
                swapped_pages=(
                    controller.device.total_swapped if controller else 0
                ),
                swap_out_pages=(
                    controller.device.pages_out if controller else 0
                ),
                swap_in_pages=(
                    controller.device.pages_in if controller else 0
                ),
                pressure_demotions=(
                    controller.demoted_huge_pages if controller else 0
                ),
                pressure_aligned_demotions=(
                    controller.demoted_aligned_huge_pages if controller else 0
                ),
            )
        )
        obs.emit(
            "host.epoch",
            fmfi=round(host_fmfi, 6),
            free_pages=memory.free_pages,
            aligned_free_pages=aligned_free,
            vms=len(tenants),
        )
