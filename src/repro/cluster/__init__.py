"""Fleet simulation: a cluster of hosts under VM churn, placement,
consolidation and live migration.

The paper studies one host at a time; this package asks the cloud-scale
question its Section 6.3 setup implies: when VMs keep arriving, resizing,
migrating and departing across a fleet, which hosts stay capable of
well-aligned huge-page backing, and what do placement and migration
policy do to that capability?

Entry points:

* :class:`~repro.cluster.config.ClusterConfig` — all knobs of one run;
* :func:`~repro.cluster.engine.run_cluster` /
  :class:`~repro.cluster.engine.ClusterSimulation` — the engine (serial
  or parallel per-host stepping, cached);
* :mod:`~repro.cluster.placement` — pluggable placement policies;
* :class:`~repro.cluster.migration.MigrationEngine` — pre-copy live
  migration with cost charging and invariant checking;
* :class:`~repro.cluster.results.FleetResult` — fleet-level metrics.
"""

from repro.cluster.config import (
    ChurnConfig,
    ClusterConfig,
    ConsolidationConfig,
    MigrationConfig,
)
from repro.cluster.engine import ClusterSimulation, fleet_key, run_cluster
from repro.cluster.host import Host, HostView, Tenant
from repro.cluster.migration import (
    MigrationEngine,
    MigrationInvariantError,
    resident_pages,
    resident_runs,
)
from repro.cluster.placement import (
    PLACEMENTS,
    PlacementPolicy,
    make_placement,
    placement_names,
)
from repro.cluster.results import (
    FleetResult,
    HostEpochRecord,
    MigrationRecord,
    TenantEpochRecord,
)
from repro.cluster.trace import TraceEvent, build_trace

__all__ = [
    "ChurnConfig",
    "ClusterConfig",
    "ClusterSimulation",
    "ConsolidationConfig",
    "FleetResult",
    "Host",
    "HostEpochRecord",
    "HostView",
    "MigrationConfig",
    "MigrationEngine",
    "MigrationInvariantError",
    "MigrationRecord",
    "PLACEMENTS",
    "PlacementPolicy",
    "Tenant",
    "TenantEpochRecord",
    "TraceEvent",
    "build_trace",
    "fleet_key",
    "make_placement",
    "placement_names",
    "resident_pages",
    "resident_runs",
    "run_cluster",
]
