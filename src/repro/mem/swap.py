"""Hypervisor swap device model.

The paper's future-work section (Section 8) names swapping as the third
memory-pressure mechanism (after ballooning and deduplication) that can
demote the huge pages Gemini builds.  Following the pluggable-backend
design of *Flexible Swapping for the Cloud* (Pandurov et al.), the device
is pure mechanism: it records which ``(vm, gpn)`` pages live on swap,
accounts in/out traffic, and prices each transfer from a seeded latency
distribution around the :mod:`repro.tlb.costs` constants.  *Policy* —
victim selection, watermarks, when to swap at all — lives entirely in
:mod:`repro.pressure`.

Swap-outs are charged as background cycles (the host writes victims out
asynchronously); swap-ins are synchronous demand faults — the vCPU stalls
on the EPT violation until the page is read back — and are charged to the
faulting tenant's ledger by the pressure controller.
"""

from __future__ import annotations

import random

from repro.tlb import costs

__all__ = ["SwapDevice"]


class SwapDevice:
    """Slot map plus traffic accounting for one host's swap backend."""

    def __init__(self, seed: int = 0, jitter: float = 0.2) -> None:
        if not 0.0 <= jitter < 1.0:
            raise ValueError(f"latency jitter out of [0, 1): {jitter}")
        self.jitter = jitter
        self._rng = random.Random(seed)
        #: vm id -> set of guest-physical pages currently on the device.
        self._slots: dict[int, set[int]] = {}
        self.pages_out = 0
        self.pages_in = 0

    # ------------------------------------------------------------------
    # Slot map
    # ------------------------------------------------------------------

    def contains(self, vm_id: int, gpn: int) -> bool:
        slots = self._slots.get(vm_id)
        return slots is not None and gpn in slots

    def swapped(self, vm_id: int) -> list[int]:
        """The VM's swapped pages, ascending (deterministic scan order)."""
        return sorted(self._slots.get(vm_id, ()))

    @property
    def total_swapped(self) -> int:
        """Pages currently on the device, across all VMs."""
        return sum(len(slots) for slots in self._slots.values())

    def drop_vm(self, vm_id: int) -> int:
        """Discard a departing VM's slots (its swapped state does not
        travel: the destination re-faults the resident set).  Returns the
        number of slots released."""
        return len(self._slots.pop(vm_id, ()))

    # ------------------------------------------------------------------
    # Transfers
    # ------------------------------------------------------------------

    def swap_out(self, vm_id: int, gpn: int) -> float:
        """Write one page out; returns the transfer's cycle cost."""
        slots = self._slots.setdefault(vm_id, set())
        if gpn in slots:
            raise ValueError(f"vm {vm_id} gpn {gpn} already swapped")
        slots.add(gpn)
        self.pages_out += 1
        return self._draw(costs.SWAP_OUT_CYCLES)

    def swap_in(self, vm_id: int, gpn: int) -> float:
        """Read one page back in; returns the fault's cycle cost."""
        slots = self._slots.get(vm_id)
        if slots is None or gpn not in slots:
            raise ValueError(f"vm {vm_id} gpn {gpn} not on swap")
        slots.remove(gpn)
        if not slots:
            del self._slots[vm_id]
        self.pages_in += 1
        return self._draw(costs.SWAP_IN_CYCLES)

    def _draw(self, mean: float) -> float:
        """One latency sample: uniform jitter around *mean*."""
        if self.jitter == 0.0:
            return mean
        return mean * (1.0 + self.jitter * (2.0 * self._rng.random() - 1.0))
