"""Address-space layout constants and alignment helpers.

The simulator follows the x86-64 conventions the paper targets: 4 KiB base
pages, 2 MiB huge pages (512 base pages per huge page), and a binary buddy
allocator with a maximum order of 11 (4 MiB blocks), matching Linux
``MAX_ORDER`` as discussed in the paper's Section 5.

All addresses in the simulator are *frame numbers* (base-page granularity)
rather than byte addresses: a frame number ``f`` corresponds to byte address
``f * PAGE_SIZE``.  Working at frame granularity keeps the arithmetic exact
and avoids carrying the 12 trailing zero bits around.
"""

from __future__ import annotations

PAGE_SHIFT = 12
PAGE_SIZE = 1 << PAGE_SHIFT  # 4 KiB

HUGE_PAGE_SHIFT = 21
HUGE_PAGE_SIZE = 1 << HUGE_PAGE_SHIFT  # 2 MiB

#: Number of base pages per 2 MiB huge page (512 on x86-64).
PAGES_PER_HUGE = HUGE_PAGE_SIZE // PAGE_SIZE

#: Linux MAX_ORDER: the buddy allocator manages blocks of 2**order pages for
#: order in [0, MAX_ORDER); the largest block is 4 MiB.
MAX_ORDER = 11

#: Buddy order of one huge page (2**9 pages == 512 pages == 2 MiB).
HUGE_ORDER = 9

KIB = 1024
MIB = 1024 * KIB
GIB = 1024 * MIB


def bytes_to_pages(nbytes: int) -> int:
    """Return the number of base pages needed to hold *nbytes* (round up)."""
    if nbytes < 0:
        raise ValueError(f"negative size: {nbytes}")
    return (nbytes + PAGE_SIZE - 1) // PAGE_SIZE


def pages_to_bytes(npages: int) -> int:
    """Return the byte size of *npages* base pages."""
    return npages * PAGE_SIZE


def is_huge_aligned(frame: int) -> bool:
    """True if base-frame number *frame* starts a 2 MiB-aligned region."""
    return frame % PAGES_PER_HUGE == 0


def huge_align_down(frame: int) -> int:
    """Round *frame* down to the start of its 2 MiB region."""
    return frame - (frame % PAGES_PER_HUGE)


def huge_align_up(frame: int) -> int:
    """Round *frame* up to the next 2 MiB boundary (identity if aligned)."""
    return huge_align_down(frame + PAGES_PER_HUGE - 1)


def huge_region_index(frame: int) -> int:
    """Index of the 2 MiB region containing base frame *frame*."""
    return frame // PAGES_PER_HUGE


def huge_region_frames(region: int) -> range:
    """Base-frame numbers covered by 2 MiB region index *region*."""
    start = region * PAGES_PER_HUGE
    return range(start, start + PAGES_PER_HUGE)


def order_pages(order: int) -> int:
    """Number of base pages in a buddy block of the given *order*."""
    if not 0 <= order <= MAX_ORDER:
        raise ValueError(f"order out of range [0, {MAX_ORDER}]: {order}")
    return 1 << order


def order_for_pages(npages: int) -> int:
    """Smallest buddy order whose block holds at least *npages* pages."""
    if npages <= 0:
        raise ValueError(f"non-positive page count: {npages}")
    order = 0
    while (1 << order) < npages:
        order += 1
    if order > MAX_ORDER:
        raise ValueError(f"{npages} pages exceed MAX_ORDER block size")
    return order
