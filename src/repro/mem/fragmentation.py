"""Memory fragmentation: the FMFI metric and the fragmenter tool.

The paper measures fragmentation with the *free memory fragmentation index*
(FMFI) from Ingens, and its evaluation (Section 6.1) uses a purpose-built
program to drive guest- and host-level memory to a target FMFI before each
fragmented-memory experiment.  Both are reproduced here.

FMFI is Gorman's *unusable free space index* evaluated at the huge-page
order: the fraction of free memory that sits in blocks too small to satisfy
a huge-page allocation.  ``FMFI == 0`` means every free page is part of some
>= 2 MiB free block; ``FMFI == 1`` means no huge page can be allocated at
all.  The paper's EMA treats ``FMFI <= 0.5`` as "low fragmentation"
(Section 4.2, huge preallocation).
"""

from __future__ import annotations

import random

from repro.mem.buddy import AllocationError
from repro.mem.layout import HUGE_ORDER, PAGES_PER_HUGE, huge_align_up
from repro.mem.physmem import PhysicalMemory

__all__ = ["fmfi", "Fragmenter"]


def fmfi(memory: PhysicalMemory, order: int = HUGE_ORDER) -> float:
    """Free memory fragmentation index of *memory* at the given order.

    Returns a value in ``[0.0, 1.0]``; 0.0 for fully-defragmented (or fully
    allocated) memory.
    """
    free = memory.free_pages
    if free == 0:
        return 0.0
    usable = memory.free_pages_at_or_above(order)
    return 1.0 - usable / free


class Fragmenter:
    """Drives a :class:`PhysicalMemory` to a target FMFI.

    The tool pins one base page in the middle of free 2 MiB-aligned regions,
    which destroys the region's huge-order free block while wasting only one
    page, until the requested FMFI is reached.  :meth:`release` undoes all
    pinning (the buddy allocator re-merges the blocks).
    """

    def __init__(self, memory: PhysicalMemory, seed: int = 0) -> None:
        self.memory = memory
        self._rng = random.Random(seed)
        self._pinned: list[int] = []

    @property
    def pinned_pages(self) -> int:
        """Number of pages currently pinned by the fragmenter."""
        return len(self._pinned)

    def fragment(self, target_fmfi: float) -> float:
        """Pin pages until ``fmfi(memory) >= target_fmfi``; return the FMFI.

        Raises :class:`ValueError` for targets outside ``[0, 1)``.  The
        achieved FMFI may exceed the target slightly (pinning is quantised
        to one huge region at a time) and may fall short only if every free
        huge region has already been destroyed.
        """
        if not 0.0 <= target_fmfi < 1.0:
            raise ValueError(f"target FMFI out of range [0, 1): {target_fmfi}")
        candidates = self._free_huge_chunks()
        self._rng.shuffle(candidates)
        for chunk_start in candidates:
            if fmfi(self.memory) >= target_fmfi:
                break
            pin = chunk_start + PAGES_PER_HUGE // 2
            try:
                self.memory.alloc_at(pin, order=0)
            except AllocationError:
                continue
            self._pinned.append(pin)
        return fmfi(self.memory)

    def release(self) -> None:
        """Unpin every page pinned by this fragmenter."""
        for frame in self._pinned:
            self.memory.free(frame, order=0)
        self._pinned.clear()

    def _free_huge_chunks(self) -> list[int]:
        """Start frames of all fully-free, huge-aligned 2 MiB chunks."""
        chunks: list[int] = []
        for start, npages in self.memory.free_regions():
            first = huge_align_up(start)
            end = start + npages
            while first + PAGES_PER_HUGE <= end:
                chunks.append(first)
                first += PAGES_PER_HUGE
        return chunks
