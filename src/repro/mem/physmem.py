"""Physical memory: one or more NUMA nodes of buddy-managed frames.

This is the substrate both layers of the simulation allocate from: the host
kernel allocates host physical frames (HPAs) here, and each guest kernel
allocates guest physical frames (GPAs) from its own
:class:`PhysicalMemory` representing the VM's guest-physical address space.

The paper's evaluation server has two NUMA nodes; the collocation
experiments (Figures 17 and 18) exercise the multi-node path, and Gemini's
contiguity list searches the node closest to the allocating thread.
"""

from __future__ import annotations

from typing import Iterator

from repro.mem.buddy import AllocationError, BuddyAllocator
from repro.mem.layout import HUGE_ORDER

__all__ = ["PhysicalMemory"]


class PhysicalMemory:
    """Frames ``[0, total_pages)`` split evenly across ``nodes`` NUMA nodes."""

    def __init__(self, total_pages: int, nodes: int = 1) -> None:
        if nodes <= 0:
            raise ValueError(f"non-positive node count: {nodes}")
        if total_pages < nodes:
            raise ValueError(f"{total_pages} pages cannot span {nodes} nodes")
        self.total_pages = total_pages
        per_node = total_pages // nodes
        self.nodes: list[BuddyAllocator] = []
        base = 0
        for node in range(nodes):
            npages = per_node if node < nodes - 1 else total_pages - base
            self.nodes.append(BuddyAllocator(npages, base=base))
            base += npages

    # ------------------------------------------------------------------
    # Allocation
    # ------------------------------------------------------------------

    def alloc(self, order: int = 0, node: int | None = None) -> int:
        """Allocate a block, preferring *node* but falling back to others."""
        for allocator in self._node_order(node):
            try:
                return allocator.alloc(order)
            except AllocationError:
                continue
        raise AllocationError(f"no free block of order >= {order} on any node")

    def alloc_at(self, start: int, order: int = 0) -> None:
        """Claim the specific block (start, order)."""
        self.node_of(start).alloc_at(start, order)

    def alloc_range(self, start: int, npages: int) -> None:
        """Claim the exact page range (must lie within a single node)."""
        self.node_of(start).alloc_range(start, npages)

    def alloc_frames(self, count: int, node: int | None = None) -> list[int]:
        """Batch equivalent of ``[self.alloc(0, node) for _ in range(count)]``.

        Sequential order-0 allocation drains each node in preference order
        before falling back to the next, so the batch takes up to
        ``free_pages`` frames from each node's batch kernel in turn.
        """
        frames: list[int] = []
        remaining = count
        for allocator in self._node_order(node):
            if remaining <= 0:
                break
            take = min(remaining, allocator.free_pages)
            if take:
                frames.extend(allocator.alloc_frames(take))
                remaining -= take
        if remaining > 0:
            raise AllocationError("no free block of order >= 0 on any node")
        return frames

    def free_frames(self, frames: list[int]) -> None:
        """Batch equivalent of ``for f in frames: self.free(f, 0)``;
        frames may belong to any mix of nodes."""
        if not frames:
            return
        ordered = sorted(frames)
        node = self.node_of(ordered[0])
        node_end = node.base + node.total_pages
        batch: list[int] = []
        for frame in ordered:
            if frame >= node_end:
                node.free_frames(batch)
                batch = []
                node = self.node_of(frame)
                node_end = node.base + node.total_pages
            batch.append(frame)
        node.free_frames(batch)

    def free(self, start: int, order: int = 0) -> None:
        self.node_of(start).free(start, order)

    def free_range(self, start: int, npages: int) -> None:
        self.node_of(start).free_range(start, npages)

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------

    def node_of(self, frame: int) -> BuddyAllocator:
        """The node allocator owning base frame *frame*."""
        for allocator in self.nodes:
            if allocator.base <= frame < allocator.base + allocator.total_pages:
                return allocator
        raise ValueError(f"frame {frame} outside physical memory")

    def node_index_of(self, frame: int) -> int:
        """Index of the NUMA node owning base frame *frame*."""
        for index, allocator in enumerate(self.nodes):
            if allocator.base <= frame < allocator.base + allocator.total_pages:
                return index
        raise ValueError(f"frame {frame} outside physical memory")

    @property
    def free_pages(self) -> int:
        return sum(allocator.free_pages for allocator in self.nodes)

    def is_free(self, frame: int) -> bool:
        return self.node_of(frame).is_free(frame)

    def range_is_free(self, start: int, npages: int) -> bool:
        try:
            return self.node_of(start).range_is_free(start, npages)
        except ValueError:
            return False

    def free_regions(self) -> list[tuple[int, int]]:
        """Merged free regions across all nodes, sorted by start frame.

        Regions never merge across node boundaries, matching the per-node
        buddy view (node address ranges are disjoint and ascending, so
        concatenation preserves the sort order).
        """
        regions: list[tuple[int, int]] = []
        for allocator in self.nodes:
            regions.extend(allocator.free_regions())
        return regions

    def large_free_regions(self) -> list[tuple[int, int]]:
        """Free regions of at least one huge page, sorted by start frame."""
        regions: list[tuple[int, int]] = []
        for allocator in self.nodes:
            regions.extend(allocator.large_free_regions())
        return regions

    def iter_free_regions_split(self, cursor: int):
        """Iterate free regions with start >= *cursor* first (ascending),
        then those below (ascending) — the next-fit rotation order.  Node
        address ranges ascend, so per-node chaining keeps each half sorted."""
        for allocator in self.nodes:
            yield from allocator.iter_free_regions_from(cursor)
        for allocator in self.nodes:
            yield from allocator.iter_free_regions_below(cursor)

    def free_pages_in_range(self, start: int, npages: int) -> int:
        """Free pages inside ``[start, start + npages)``, across nodes."""
        end = start + npages
        total = 0
        for allocator in self.nodes:
            lo = max(start, allocator.base)
            hi = min(end, allocator.base + allocator.total_pages)
            if lo < hi:
                total += allocator.free_pages_in_range(lo, hi - lo)
        return total

    def free_run_length(self, frame: int, limit: int) -> int:
        """Free pages (capped at *limit*) starting at *frame* within its
        node; runs never extend across node boundaries."""
        try:
            return self.node_of(frame).free_run_length(frame, limit)
        except ValueError:
            return 0

    def max_free_region(self) -> tuple[int, int] | None:
        """Largest free region over all nodes; ties resolve to the lowest
        start frame."""
        best: tuple[int, int] | None = None
        for allocator in self.nodes:
            candidate = allocator.max_free_region()
            if candidate is None:
                continue
            if best is None or candidate[1] > best[1]:
                best = candidate
        return best

    def free_blocks(self) -> Iterator[tuple[int, int]]:
        for allocator in self.nodes:
            yield from allocator.free_blocks()

    def free_pages_at_or_above(self, order: int = HUGE_ORDER) -> int:
        return sum(a.free_pages_at_or_above(order) for a in self.nodes)

    def _node_order(self, node: int | None) -> Iterator[BuddyAllocator]:
        if node is None:
            yield from self.nodes
            return
        if not 0 <= node < len(self.nodes):
            raise ValueError(f"node index out of range: {node}")
        yield self.nodes[node]
        for index, allocator in enumerate(self.nodes):
            if index != node:
                yield allocator
