"""Physical memory substrate: layout constants, buddy allocator, NUMA-aware
physical memory, and fragmentation tooling (FMFI metric + fragmenter)."""

from repro.mem.buddy import AllocationError, BuddyAllocator
from repro.mem.fragmentation import Fragmenter, fmfi
from repro.mem.layout import (
    GIB,
    HUGE_ORDER,
    HUGE_PAGE_SIZE,
    KIB,
    MAX_ORDER,
    MIB,
    PAGE_SIZE,
    PAGES_PER_HUGE,
    bytes_to_pages,
    huge_align_down,
    huge_align_up,
    huge_region_frames,
    huge_region_index,
    is_huge_aligned,
    order_for_pages,
    order_pages,
    pages_to_bytes,
)
from repro.mem.physmem import PhysicalMemory

__all__ = [
    "AllocationError",
    "BuddyAllocator",
    "Fragmenter",
    "fmfi",
    "GIB",
    "HUGE_ORDER",
    "HUGE_PAGE_SIZE",
    "KIB",
    "MAX_ORDER",
    "MIB",
    "PAGE_SIZE",
    "PAGES_PER_HUGE",
    "PhysicalMemory",
    "bytes_to_pages",
    "huge_align_down",
    "huge_align_up",
    "huge_region_frames",
    "huge_region_index",
    "is_huge_aligned",
    "order_for_pages",
    "order_pages",
    "pages_to_bytes",
]
