"""Binary buddy allocator.

A faithful model of the Linux buddy system the paper builds on (Section 5):
free memory is grouped into order-*x* free lists where a block in the
order-*x* list holds ``2**x`` contiguous, ``2**x``-aligned base pages, with
``MAX_ORDER == 11`` (4 MiB blocks).

Beyond the standard ``alloc``/``free`` interface this allocator supports the
*targeted* operations Gemini's huge-booking and enhanced memory allocator
(EMA) require:

* :meth:`BuddyAllocator.alloc_at` — claim one specific, aligned block,
  splitting larger free blocks as needed (used to allocate at a computed
  GPA/HPA so a mis-aligned huge page at the other layer becomes
  well-aligned).
* :meth:`BuddyAllocator.alloc_range` / :meth:`BuddyAllocator.free_range` —
  claim or release an arbitrary page range by decomposing it into maximal
  aligned blocks (used by the booking component to reserve huge-page-sized
  regions and by the fragmenter tool).

Addresses are base-page frame numbers (see :mod:`repro.mem.layout`).
"""

from __future__ import annotations

import heapq
from bisect import bisect_left, bisect_right, insort
from typing import Iterator

from repro.mem.layout import HUGE_ORDER, MAX_ORDER

__all__ = ["AllocationError", "BuddyAllocator"]

#: Regions at least this large (one huge page) are tracked in a dedicated
#: side list: they are the only candidates for huge-aligned placement, and
#: under fragmentation they are rare while small intervals are plentiful.
LARGE_REGION_PAGES = 1 << HUGE_ORDER


class AllocationError(Exception):
    """Raised when an allocation request cannot be satisfied."""


class _RegionIndex:
    """Incrementally-maintained set of maximal free intervals.

    Mirrors what :meth:`BuddyAllocator.free_regions` used to recompute from
    the free lists on every call (sort all free blocks, merge adjacent):
    two parallel sorted arrays of interval starts and ends, updated as
    blocks enter and leave the free lists.  Gemini's contiguity list walks
    free regions on every anchor, which made the recompute the single
    hottest path of a fragmented run.
    """

    __slots__ = ("_starts", "_ends", "_heap", "_large")

    def __init__(self) -> None:
        self._starts: list[int] = []
        self._ends: list[int] = []
        #: Lazy max-heap of (-size, start) candidates for max_region();
        #: entries are validated against the arrays on inspection.
        self._heap: list[tuple[int, int]] = []
        #: Sorted starts of intervals spanning >= LARGE_REGION_PAGES.
        self._large: list[int] = []

    def _large_add(self, start: int, size: int) -> None:
        if size >= LARGE_REGION_PAGES:
            insort(self._large, start)

    def _large_drop(self, start: int, size: int) -> None:
        if size >= LARGE_REGION_PAGES:
            i = bisect_left(self._large, start)
            del self._large[i]

    def add(self, start: int, end: int) -> None:
        """Insert free interval [start, end), merging with neighbours."""
        i = bisect_left(self._starts, start)
        merge_prev = i > 0 and self._ends[i - 1] == start
        merge_next = i < len(self._starts) and self._starts[i] == end
        if merge_prev and merge_next:
            self._large_drop(self._starts[i - 1], start - self._starts[i - 1])
            self._large_drop(end, self._ends[i] - end)
            end = self._ends[i]
            del self._starts[i]
            del self._ends[i]
            self._ends[i - 1] = end
            start = self._starts[i - 1]
        elif merge_prev:
            self._large_drop(self._starts[i - 1], start - self._starts[i - 1])
            self._ends[i - 1] = end
            start = self._starts[i - 1]
        elif merge_next:
            self._large_drop(end, self._ends[i] - end)
            self._starts[i] = start
            end = self._ends[i]
        else:
            self._starts.insert(i, start)
            self._ends.insert(i, end)
        self._large_add(start, end - start)
        heapq.heappush(self._heap, (start - end, start))

    def remove(self, start: int, end: int) -> None:
        """Carve allocated interval [start, end) out of its free interval."""
        i = bisect_right(self._starts, start) - 1
        s, e = self._starts[i], self._ends[i]
        self._large_drop(s, e - s)
        if s == start and e == end:
            del self._starts[i]
            del self._ends[i]
        elif s == start:
            self._starts[i] = end
            self._large_add(end, e - end)
            heapq.heappush(self._heap, (end - e, end))
        elif e == end:
            self._ends[i] = start
            self._large_add(s, start - s)
            heapq.heappush(self._heap, (s - start, s))
        else:
            self._ends[i] = start
            self._starts.insert(i + 1, end)
            self._ends.insert(i + 1, e)
            self._large_add(s, start - s)
            self._large_add(end, e - end)
            heapq.heappush(self._heap, (s - start, s))
            heapq.heappush(self._heap, (end - e, end))

    def regions(self) -> list[tuple[int, int]]:
        """Sorted (start, npages) for every maximal free interval."""
        return [(s, e - s) for s, e in zip(self._starts, self._ends)]

    def large_regions(self) -> list[tuple[int, int]]:
        """Sorted (start, npages) for intervals >= LARGE_REGION_PAGES."""
        starts = self._starts
        ends = self._ends
        out = []
        for start in self._large:
            i = bisect_left(starts, start)
            out.append((start, ends[i] - start))
        return out

    def iter_from(self, cursor: int):
        """Yield (start, npages) for intervals with start >= cursor."""
        starts = self._starts
        ends = self._ends
        for j in range(bisect_left(starts, cursor), len(starts)):
            yield starts[j], ends[j] - starts[j]

    def iter_below(self, cursor: int):
        """Yield (start, npages) for intervals with start < cursor."""
        starts = self._starts
        ends = self._ends
        for j in range(bisect_left(starts, cursor)):
            yield starts[j], ends[j] - starts[j]

    def __len__(self) -> int:
        return len(self._starts)

    def run_length(self, frame: int, limit: int) -> int:
        """Length (capped at *limit*) of the free run starting at *frame*."""
        i = bisect_right(self._starts, frame) - 1
        if i < 0 or self._ends[i] <= frame:
            return 0
        return min(self._ends[i] - frame, limit)

    def pages_in_range(self, start: int, npages: int) -> int:
        """Number of free pages inside ``[start, start + npages)``."""
        end = start + npages
        total = 0
        i = bisect_right(self._starts, start) - 1
        if i >= 0 and self._ends[i] > start:
            total += min(self._ends[i], end) - start
        for j in range(i + 1, len(self._starts)):
            s = self._starts[j]
            if s >= end:
                break
            total += min(self._ends[j], end) - s
        return total

    def max_region(self) -> tuple[int, int] | None:
        """(start, npages) of the largest interval; ties favour the lowest
        start (matching ``max(regions, key=size)`` over the sorted list)."""
        heap = self._heap
        while heap:
            neg_size, start = heap[0]
            i = bisect_left(self._starts, start)
            if (
                i < len(self._starts)
                and self._starts[i] == start
                and self._ends[i] - start == -neg_size
            ):
                return start, -neg_size
            heapq.heappop(heap)
        return None


class _FreeList:
    """One buddy free list: a set of block-start frames with O(log n) min.

    The heap may contain stale entries (blocks that were since removed);
    entries are validated against the set lazily on pop.
    """

    def __init__(self) -> None:
        self.blocks: set[int] = set()
        self._heap: list[int] = []

    def add(self, start: int) -> None:
        self.blocks.add(start)
        heapq.heappush(self._heap, start)

    def remove(self, start: int) -> None:
        self.blocks.remove(start)

    def pop_lowest(self) -> int:
        """Remove and return the lowest-addressed block start."""
        while self._heap:
            start = heapq.heappop(self._heap)
            if start in self.blocks:
                self.blocks.remove(start)
                return start
        raise AllocationError("free list empty")

    def __contains__(self, start: int) -> bool:
        return start in self.blocks

    def __len__(self) -> int:
        return len(self.blocks)

    def __bool__(self) -> bool:
        return bool(self.blocks)


class BuddyAllocator:
    """Binary buddy allocator over ``[base, base + total_pages)``.

    ``base`` and ``total_pages`` need not be power-of-two aligned; the
    initial free space is decomposed into maximal aligned blocks exactly the
    way Linux seeds its zones.
    """

    def __init__(self, total_pages: int, base: int = 0) -> None:
        if total_pages <= 0:
            raise ValueError(f"non-positive memory size: {total_pages}")
        if base < 0:
            raise ValueError(f"negative base frame: {base}")
        self.base = base
        self.total_pages = total_pages
        self.free_pages = 0
        self._free: list[_FreeList] = [_FreeList() for _ in range(MAX_ORDER + 1)]
        self._regions = _RegionIndex()
        self._seed_free_space(base, total_pages)

    # ------------------------------------------------------------------
    # Construction helpers
    # ------------------------------------------------------------------

    def _seed_free_space(self, start: int, npages: int) -> None:
        for block, order in _decompose(start, npages):
            self._insert(block, order)

    def _insert(self, start: int, order: int) -> None:
        self._free[order].add(start)
        self.free_pages += 1 << order
        self._regions.add(start, start + (1 << order))

    def _remove(self, start: int, order: int) -> None:
        self._free[order].remove(start)
        self.free_pages -= 1 << order
        self._regions.remove(start, start + (1 << order))

    # ------------------------------------------------------------------
    # Standard allocation interface
    # ------------------------------------------------------------------

    def alloc(self, order: int = 0) -> int:
        """Allocate a ``2**order``-page aligned block; return its start frame.

        Splits the lowest-addressed larger block when the exact order is
        exhausted, mirroring Linux's ``__rmqueue_smallest``.  Raises
        :class:`AllocationError` when no block of sufficient order is free.
        """
        self._check_order(order)
        for source in range(order, MAX_ORDER + 1):
            if self._free[source]:
                start = self._free[source].pop_lowest()
                self.free_pages -= 1 << source
                self._regions.remove(start, start + (1 << source))
                return self._split_to(start, source, order)
        raise AllocationError(f"no free block of order >= {order}")

    def _split_to(self, start: int, source: int, order: int) -> int:
        """Split block (start, source) down to *order*; free the remainders."""
        while source > order:
            source -= 1
            buddy = start + (1 << source)
            self._insert(buddy, source)
        return start

    def alloc_frames(self, count: int) -> list[int]:
        """Batch equivalent of ``[self.alloc(0) for _ in range(count)]``.

        Sequential order-0 allocation drains one free block at a time:
        ``alloc(0)`` pops the lowest block of the smallest non-empty order
        and splits it, leaving its remainder as the only blocks below that
        order — so the next allocations return the block's frames in
        ascending order until it is consumed.  The batch claims whole
        blocks at once and re-inserts the remainder of a partially-used
        block as the same maximal decomposition the splits would leave,
        reproducing the identical free-list and region state.
        """
        frames: list[int] = []
        remaining = count
        while remaining > 0:
            for source in range(MAX_ORDER + 1):
                if self._free[source]:
                    break
            else:
                raise AllocationError("no free block of order >= 0")
            start = self._free[source].pop_lowest()
            size = 1 << source
            self.free_pages -= size
            self._regions.remove(start, start + size)
            take = size if size <= remaining else remaining
            frames.extend(range(start, start + take))
            if take < size:
                for block, border in _decompose(start + take, size - take):
                    self._insert(block, border)
            remaining -= take
        return frames

    def free_frames(self, frames: list[int]) -> None:
        """Batch equivalent of ``for f in frames: self.free(f, 0)``.

        Buddy coalescing is confluent — the final free-block set depends
        only on which frames are free, not on the order frames were
        returned — so the batch may sort the frames, merge them into
        contiguous runs and release each run as its maximal aligned
        blocks, cascading merges from there.
        """
        if not frames:
            return
        ordered = sorted(frames)
        run_start = prev = ordered[0]
        for frame in ordered[1:]:
            if frame == prev + 1:
                prev = frame
                continue
            if frame == prev:
                raise ValueError(f"double free of block ({frame}, order 0)")
            self.free_range(run_start, prev - run_start + 1)
            run_start = prev = frame
        self.free_range(run_start, prev - run_start + 1)

    def free(self, start: int, order: int = 0) -> None:
        """Return block (start, order) to the allocator, merging buddies."""
        self._check_order(order)
        if start % (1 << order) != 0:
            raise ValueError(f"block start {start} not aligned to order {order}")
        if not self._within(start, 1 << order):
            raise ValueError(f"block ({start}, order {order}) outside memory")
        if self._regions.pages_in_range(start, 1 << order) > 0:
            raise ValueError(f"double free of block ({start}, order {order})")
        while order < MAX_ORDER:
            buddy = start ^ (1 << order)
            if buddy not in self._free[order] or not self._within(buddy, 1 << order):
                break
            self._remove(buddy, order)
            start = min(start, buddy)
            order += 1
        self._insert(start, order)

    # ------------------------------------------------------------------
    # Targeted allocation (booking / EMA support)
    # ------------------------------------------------------------------

    def alloc_at(self, start: int, order: int = 0) -> None:
        """Claim the specific block (start, order), splitting as needed.

        Raises :class:`AllocationError` if any page of the block is already
        allocated, and :class:`ValueError` on misaligned requests.
        """
        self._check_order(order)
        if start % (1 << order) != 0:
            raise ValueError(f"block start {start} not aligned to order {order}")
        container = self._containing_free_block(start, order)
        if container is None:
            raise AllocationError(f"block ({start}, order {order}) not fully free")
        cstart, corder = container
        self._remove(cstart, corder)
        # Split the container, keeping the half containing the target and
        # freeing the other half, until we reach the requested block.
        while corder > order:
            corder -= 1
            low, high = cstart, cstart + (1 << corder)
            if start < high:
                self._insert(high, corder)
                cstart = low
            else:
                self._insert(low, corder)
                cstart = high

    def alloc_range(self, start: int, npages: int) -> None:
        """Claim the exact page range ``[start, start + npages)``.

        The whole range must currently be free; on failure nothing is
        allocated.
        """
        if not self.range_is_free(start, npages):
            raise AllocationError(f"range ({start}, {npages} pages) not fully free")
        for block, order in _decompose(start, npages):
            self.alloc_at(block, order)

    def free_range(self, start: int, npages: int) -> None:
        """Release the exact page range ``[start, start + npages)``."""
        for block, order in _decompose(start, npages):
            self.free(block, order)

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------

    def is_free(self, frame: int) -> bool:
        """True if base frame *frame* currently belongs to a free block."""
        return self._regions.run_length(frame, 1) == 1

    def range_is_free(self, start: int, npages: int) -> bool:
        """True if every page in ``[start, start + npages)`` is free."""
        if npages <= 0 or not self._within(start, npages):
            return False
        return self._regions.run_length(start, npages) >= npages

    def free_blocks(self) -> Iterator[tuple[int, int]]:
        """Yield (start, order) for every free block, unsorted."""
        for order in range(MAX_ORDER + 1):
            for start in self._free[order].blocks:
                yield start, order

    def free_block_counts(self) -> list[int]:
        """Number of free blocks at each order, index 0..MAX_ORDER."""
        return [len(fl) for fl in self._free]

    def free_regions(self) -> list[tuple[int, int]]:
        """Merged, sorted list of maximal free regions as (start, npages).

        Adjacent free blocks that are not buddies (and therefore stay
        separate in the free lists) are merged here; this is the view the
        Gemini contiguity list is built from.  Maintained incrementally by
        the region index, so reading it is O(regions) with no sorting.
        """
        return self._regions.regions()

    def large_free_regions(self) -> list[tuple[int, int]]:
        """Sorted (start, npages) free regions of at least one huge page."""
        return self._regions.large_regions()

    def iter_free_regions_from(self, cursor: int):
        """Iterate (start, npages) free regions with start >= *cursor*."""
        return self._regions.iter_from(cursor)

    def iter_free_regions_below(self, cursor: int):
        """Iterate (start, npages) free regions with start < *cursor*."""
        return self._regions.iter_below(cursor)

    def free_run_length(self, frame: int, limit: int) -> int:
        """Number of free pages (capped at *limit*) starting at *frame*."""
        if limit <= 0 or not self._within(frame, 1):
            return 0
        return self._regions.run_length(frame, limit)

    def free_pages_in_range(self, start: int, npages: int) -> int:
        """Number of free pages inside ``[start, start + npages)``."""
        if npages <= 0:
            return 0
        return self._regions.pages_in_range(start, npages)

    def max_free_region(self) -> tuple[int, int] | None:
        """Largest maximal free region as (start, npages); ties resolve to
        the lowest start.  None when no memory is free."""
        return self._regions.max_region()

    def largest_free_order(self) -> int:
        """Largest order with a free block, or -1 if memory is exhausted."""
        for order in range(MAX_ORDER, -1, -1):
            if self._free[order]:
                return order
        return -1

    def free_pages_at_or_above(self, order: int) -> int:
        """Free pages sitting in blocks of at least the given order."""
        self._check_order(order)
        return sum((1 << o) * len(self._free[o]) for o in range(order, MAX_ORDER + 1))

    # ------------------------------------------------------------------
    # Internals
    # ------------------------------------------------------------------

    def _within(self, start: int, npages: int) -> bool:
        return start >= self.base and start + npages <= self.base + self.total_pages

    def _containing_free_block(self, start: int, order: int) -> tuple[int, int] | None:
        """Find the free block fully containing block (start, order)."""
        for corder in range(order, MAX_ORDER + 1):
            cstart = start - (start % (1 << corder))
            if cstart in self._free[corder]:
                return cstart, corder
        return None

    @staticmethod
    def _check_order(order: int) -> None:
        if not 0 <= order <= MAX_ORDER:
            raise ValueError(f"order out of range [0, {MAX_ORDER}]: {order}")


def _decompose(start: int, npages: int) -> Iterator[tuple[int, int]]:
    """Decompose an arbitrary page range into maximal aligned buddy blocks."""
    if npages < 0:
        raise ValueError(f"negative page count: {npages}")
    frame = start
    remaining = npages
    while remaining > 0:
        # Largest order allowed by both the alignment of `frame` and the
        # number of remaining pages.
        align_order = (frame & -frame).bit_length() - 1 if frame else MAX_ORDER
        size_order = remaining.bit_length() - 1
        order = min(align_order, size_order, MAX_ORDER)
        yield frame, order
        frame += 1 << order
        remaining -= 1 << order
