"""Command-line interface: ``python -m repro <command>``.

Commands
--------

``list``
    Show the available systems and workload models.
``run``
    Simulate one workload under one or more systems and print a summary.
``experiment``
    Regenerate one of the paper's tables/figures or the extra studies:
    fig02, fig03, clean-slate (figs 8-11 + table 3), reused-vm (figs 12-15
    + table 4), fig16, collocation (figs 17-18), ablations, validation,
    sweeps, interplay, fleet.
``cluster``
    Simulate a fleet of hosts under VM churn, placement, consolidation
    and live migration, and print fleet FMFI, the per-host alignment
    distribution and migration cost accounting.

``trace``
    Run one of the ``experiment`` targets with telemetry enabled and
    export the event log, Chrome/Perfetto trace, span summary and time
    series into a directory (default ``trace/<name>``).
``diff``
    Compare two exported trace directories: per-host event-stream
    divergence, counter deltas and attributed span self-time changes.
``bench``
    Bench-history tools; ``repro bench compare`` gates a fresh
    ``BENCH_perf.json`` against ``BENCH_history.jsonl`` with
    noise-aware thresholds (fail-soft unless ``--strict``).

``run``, ``experiment`` and ``cluster`` accept ``--profile [N]`` (or the
``REPRO_PROFILE`` environment variable) to wrap the command in
:mod:`cProfile` and print the top N functions by cumulative time.
``cluster`` additionally exposes the fused IPC protocol knobs
(``--spool-epochs``, ``--no-fused``, ``--no-view-deltas``,
``--no-adaptive``) — execution strategies that never change results.

Every command also takes the telemetry knobs ``--trace-out DIR``,
``--trace-events N`` and ``--trace-sample R`` (environment:
``REPRO_TRACE*``); with ``--trace-out`` the exports land in *DIR*
after the command finishes (see docs/OBSERVABILITY.md).
"""

from __future__ import annotations

import argparse
import sys
from dataclasses import replace

from repro import obs
from repro.cluster import (
    ClusterConfig,
    FleetResult,
    MigrationConfig,
    placement_names,
    run_cluster,
)
from repro.exec import Cell, ResultCache, run_cells
from repro.experiments import (
    ablations,
    breakdown,
    clean_slate,
    collocation,
    fig02_microbench,
    fig03_motivation,
    fleet_consolidation,
    interplay,
    overcommit,
    reused_vm,
    sweeps,
    validation,
)
from repro.pressure import victim_names
from repro.metrics.report import format_cache_stats, format_fleet_summary
from repro.policies.registry import PAPER_SYSTEMS, SYSTEMS
from repro.sim.config import SimulationConfig
from repro.workloads.suite import make_workload, workload_names

__all__ = ["main", "build_parser"]


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Simulation-based reproduction of Gemini (EuroSys '23)",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("list", help="list systems and workloads")

    run = sub.add_parser("run", help="simulate one workload")
    run.add_argument("workload", help="workload name (see `repro list`)")
    run.add_argument(
        "--system",
        "-s",
        action="append",
        dest="systems",
        help="system(s) to run; repeatable (default: Host-B-VM-B, THP, Gemini)",
    )
    run.add_argument("--epochs", type=int, default=16)
    run.add_argument("--fragment", type=float, default=0.8,
                     help="target FMFI at both layers (default 0.8)")
    run.add_argument("--guest-mib", type=int, default=256)
    run.add_argument("--host-mib", type=int, default=768)
    run.add_argument("--seed", type=int, default=42)
    run.add_argument("--reused-vm", action="store_true",
                     help="prime the VM with a full SVM run first")
    _add_exec_args(run)

    experiment_choices = [
        "fig02", "fig03", "clean-slate", "reused-vm", "fig16",
        "collocation", "ablations", "validation", "sweeps",
        "interplay", "fleet", "overcommit",
    ]
    experiment = sub.add_parser("experiment", help="regenerate a paper table/figure")
    experiment.add_argument("name", choices=experiment_choices)
    experiment.add_argument("--epochs", type=int, default=None)
    experiment.add_argument("--unfragmented", action="store_true")
    experiment.add_argument(
        "--workload", "-w", action="append", dest="workloads",
        help="restrict to specific workloads; repeatable",
    )
    _add_exec_args(experiment)

    trace = sub.add_parser(
        "trace",
        help="run an experiment with telemetry on and export the trace",
    )
    trace.add_argument("name", choices=experiment_choices)
    trace.add_argument("--epochs", type=int, default=None)
    trace.add_argument("--unfragmented", action="store_true")
    trace.add_argument(
        "--workload", "-w", action="append", dest="workloads",
        help="restrict to specific workloads; repeatable",
    )
    _add_exec_args(trace)

    cluster = sub.add_parser(
        "cluster", help="simulate a fleet of hosts under VM churn"
    )
    cluster.add_argument("--hosts", type=int, default=8)
    cluster.add_argument("--host-mib", type=int, default=768)
    cluster.add_argument("--epochs", type=int, default=16)
    cluster.add_argument("--seed", type=int, default=42)
    cluster.add_argument("--system", default="Gemini",
                         help="coalescing policy on every host (see `repro list`)")
    cluster.add_argument(
        "--placement", default="first-fit", choices=placement_names(),
        help="VM placement policy (default first-fit)",
    )
    cluster.add_argument(
        "--fragment-host", type=float, default=0.0,
        help="FMFI target of the oldest host; hosts get a linear "
        "age gradient down to 0 on the newest (default 0)",
    )
    cluster.add_argument(
        "--check-invariants", action="store_true",
        help="verify page conservation after every migration (debug)",
    )
    cluster.add_argument(
        "--spool-epochs", type=int, default=None, metavar="K",
        help="drain worker record spools every K epochs "
        "(default: $REPRO_SPOOL_EPOCHS or 8)",
    )
    cluster.add_argument(
        "--no-fused", dest="fused", action="store_false",
        help="per-event blocking IPC instead of fused epoch batches (debug)",
    )
    cluster.add_argument(
        "--no-view-deltas", dest="view_deltas", action="store_false",
        help="ship full host views instead of bitmask deltas (debug)",
    )
    cluster.add_argument(
        "--no-adaptive", dest="adaptive", action="store_false",
        help="keep the worker pool even when serial would be faster",
    )
    _add_exec_args(cluster)

    pressure = sub.add_parser(
        "pressure",
        help="simulate an overcommitted fleet under memory pressure",
    )
    pressure.add_argument("--hosts", type=int, default=3)
    pressure.add_argument("--host-mib", type=int, default=128)
    pressure.add_argument("--epochs", type=int, default=10)
    pressure.add_argument("--seed", type=int, default=7)
    pressure.add_argument("--system", default="Gemini",
                          help="coalescing policy on every host")
    pressure.add_argument(
        "--overcommit", type=float, default=2.5,
        help="commitment admission multiple of physical memory "
        "(default 2.5)",
    )
    pressure.add_argument(
        "--victims", default="alignment-aware", choices=victim_names(),
        help="swap victim policy (default alignment-aware)",
    )
    pressure.add_argument(
        "--fragment-host", type=float, default=0.0,
        help="FMFI aging gradient of the fleet (default 0, clean hosts)",
    )
    _add_exec_args(pressure)

    diff = sub.add_parser(
        "diff",
        help="compare two exported trace directories (repro diff A B)",
    )
    diff.add_argument("dir_a", help="first export directory (baseline)")
    diff.add_argument("dir_b", help="second export directory")
    diff.add_argument(
        "--threshold", type=float, default=0.1, metavar="R",
        help="relative span self-time change treated as noise "
        "(default 0.1)",
    )
    diff.add_argument(
        "--strict", action="store_true",
        help="exit non-zero when the deterministic state diverges",
    )

    bench = sub.add_parser(
        "bench", help="bench-history tools (repro bench compare)"
    )
    bench.add_argument("action", choices=["compare"])
    bench.add_argument(
        "--history", default="BENCH_history.jsonl", metavar="PATH",
        help="bench history JSONL (default BENCH_history.jsonl)",
    )
    bench.add_argument(
        "--fresh", default="BENCH_perf.json", metavar="PATH",
        help="fresh perf-smoke report to gate (default BENCH_perf.json)",
    )
    bench.add_argument(
        "--threshold", type=float, default=0.25, metavar="R",
        help="relative drift that flags a regression (default 0.25)",
    )
    bench.add_argument(
        "--window", type=int, default=5, metavar="K",
        help="history runs the baseline median is taken over (default 5)",
    )
    bench.add_argument(
        "--strict", action="store_true",
        help="exit non-zero on regressions (default: fail-soft warnings)",
    )
    return parser


def _add_exec_args(command: argparse.ArgumentParser) -> None:
    command.add_argument(
        "--workers", type=int, default=None,
        help="simulation worker processes (default: $REPRO_WORKERS or 1)",
    )
    command.add_argument(
        "--cache-dir", default=None,
        help="result cache directory (default: $REPRO_CACHE_DIR or no cache)",
    )
    command.add_argument(
        "--profile", nargs="?", const=25, default=None, type=int,
        metavar="N",
        help="profile the command with cProfile and print the top N "
        "cumulative hotspots (default N: 25; also $REPRO_PROFILE)",
    )
    command.add_argument(
        "--trace-out", default=None, metavar="DIR",
        help="enable telemetry and export traces to DIR "
        "(also $REPRO_TRACE_OUT)",
    )
    command.add_argument(
        "--trace-events", type=int, default=None, metavar="N",
        help="event ring capacity (default 65536; also $REPRO_TRACE_EVENTS)",
    )
    command.add_argument(
        "--trace-sample", type=float, default=None, metavar="R",
        help="event keep rate in (0, 1] (default 1.0; "
        "also $REPRO_TRACE_SAMPLE)",
    )


def _apply_exec_args(args: argparse.Namespace) -> None:
    """Publish --workers/--cache-dir/--trace-* where the experiment
    harness and forked workers read them (environment knobs)."""
    import os

    if args.workers is not None:
        os.environ["REPRO_WORKERS"] = str(args.workers)
    if args.cache_dir is not None:
        os.environ["REPRO_CACHE_DIR"] = args.cache_dir
    if getattr(args, "trace_out", None) is not None:
        os.environ["REPRO_TRACE_OUT"] = args.trace_out
    if getattr(args, "trace_events", None) is not None:
        os.environ["REPRO_TRACE_EVENTS"] = str(args.trace_events)
    if getattr(args, "trace_sample", None) is not None:
        os.environ["REPRO_TRACE_SAMPLE"] = str(args.trace_sample)


def _cmd_list() -> int:
    print("Systems:")
    for name, spec in SYSTEMS.items():
        star = " (paper comparison set)" if name in PAPER_SYSTEMS else ""
        print(f"  {name}{star}")
    print()
    print("Workloads (Table 2):")
    for name in workload_names():
        workload = make_workload(name)
        print(f"  {name:<14s} {workload.description}")
    return 0


def _cmd_run(args: argparse.Namespace) -> int:
    systems = args.systems or ["Host-B-VM-B", "THP", "Gemini"]
    config = SimulationConfig(
        epochs=args.epochs,
        fragment_guest=args.fragment,
        fragment_host=args.fragment,
        guest_mib=args.guest_mib,
        host_mib=args.host_mib,
        seed=args.seed,
    )
    primer_factory = _svm_primer if args.reused_vm else None
    cells = [Cell(args.workload, system, config, primer_factory) for system in systems]
    cache = ResultCache(args.cache_dir) if args.cache_dir else ResultCache.from_env()
    results = run_cells(cells, workers=args.workers, cache=cache)
    header = (
        f"{'system':<20s} {'throughput':>10s} {'mean lat':>9s} {'p99':>9s} "
        f"{'TLB misses':>11s} {'aligned':>8s}"
    )
    print(header)
    print("-" * len(header))
    baseline = results[0]
    for system, result in zip(systems, results):
        print(
            f"{system:<20s} "
            f"{result.throughput / baseline.throughput:>9.2f}x "
            f"{result.mean_latency / baseline.mean_latency:>8.2f}x "
            f"{result.p99_latency / baseline.p99_latency:>8.2f}x "
            f"{result.tlb_misses:>11.2e} "
            f"{result.well_aligned_rate:>7.0%}"
        )
    if cache is not None and cache.stats.requests:
        print()
        print(format_cache_stats(cache.stats))
    return 0


def _svm_primer():
    """Module-level primer factory (picklable for worker processes)."""
    return make_workload("SVM")


def _cmd_experiment(args: argparse.Namespace) -> int:
    name = args.name
    epochs = args.epochs
    if name == "fig02":
        print(fig02_microbench.format_fig02(fig02_microbench.run_fig02()))
    elif name == "fig03":
        results = fig03_motivation.run_fig03(epochs=epochs)
        print(fig03_motivation.format_fig03(results))
    elif name == "clean-slate":
        results = clean_slate.run_clean_slate(
            fragmented=not args.unfragmented,
            workloads=args.workloads,
            epochs=epochs,
        )
        label = " (unfragmented)" if args.unfragmented else " (fragmented)"
        print(clean_slate.format_clean_slate(results, label))
    elif name == "reused-vm":
        results = reused_vm.run_reused_vm(workloads=args.workloads, epochs=epochs)
        print(reused_vm.format_reused_vm(results))
    elif name == "fig16":
        results = breakdown.run_breakdown(workloads=args.workloads, epochs=epochs)
        print(breakdown.format_breakdown(results))
    elif name == "collocation":
        results = collocation.run_collocation(epochs=epochs)
        print(collocation.format_collocation(results))
    elif name == "validation":
        points = validation.run_validation()
        print(validation.format_validation(points))
    elif name == "sweeps":
        print(sweeps.format_sweep(
            sweeps.run_fragmentation_sweep(epochs=epochs),
            "Fragmentation sweep (Masstree)",
        ))
        print()
        print(sweeps.format_sweep(
            sweeps.run_tlb_sweep(epochs=epochs),
            "TLB capacity sweep (Masstree)",
        ))
    elif name == "interplay":
        print(interplay.format_balloon(interplay.run_balloon_interplay(epochs=epochs)))
        print()
        print(interplay.format_ksm(interplay.run_ksm_interplay(epochs=epochs)))
    elif name == "fleet":
        results = fleet_consolidation.run_fleet_consolidation(
            epochs=epochs, workers=args.workers
        )
        print(fleet_consolidation.format_fleet_consolidation(results))
    elif name == "overcommit":
        results = overcommit.run_overcommit(
            epochs=epochs, workers=args.workers
        )
        print(overcommit.format_overcommit(results))
    elif name == "ablations":
        print(ablations.format_ablation(
            ablations.run_timeout_ablation(epochs=epochs),
            "Booking timeout (Algorithm 1)",
        ))
        print()
        print(ablations.format_ablation(
            ablations.run_prealloc_sweep(epochs=epochs),
            "Huge preallocation threshold",
        ))
        print()
        print(ablations.format_ablation(
            ablations.run_bucket_hold_sweep(epochs=epochs),
            "Bucket hold time",
        ))
    return 0


def _profile_top(args: argparse.Namespace) -> int | None:
    """Hotspot count for --profile / $REPRO_PROFILE, or None (no profiling)."""
    import os

    top = getattr(args, "profile", None)
    if top is not None:
        return top
    raw = os.environ.get("REPRO_PROFILE", "").strip()
    if not raw:
        return None
    try:
        return int(raw)
    except ValueError:
        return 25


def _cmd_cluster(args: argparse.Namespace) -> int:
    config = ClusterConfig(
        hosts=args.hosts,
        host_mib=args.host_mib,
        epochs=args.epochs,
        seed=args.seed,
        system=args.system,
        placement=args.placement,
        fragment_host=args.fragment_host,
        migration=MigrationConfig(check_invariants=args.check_invariants),
        fused_epochs=args.fused,
        view_deltas=args.view_deltas,
        spool_epochs=args.spool_epochs,
        adaptive_parallel=args.adaptive,
    )
    cache = (
        ResultCache(args.cache_dir, expected=FleetResult)
        if args.cache_dir
        else ResultCache.from_env(expected=FleetResult)
    )
    result = run_cluster(config, workers=args.workers, cache=cache)
    print(format_fleet_summary(result))
    if cache is not None and cache.stats.requests:
        print()
        print(format_cache_stats(cache.stats))
    return 0


def _cmd_pressure(args: argparse.Namespace) -> int:
    """``repro pressure``: an overcommitted fleet with the full reclaim
    ladder on, reported with swap-traffic and alignment-damage columns."""
    config = replace(
        overcommit.OVERCOMMIT_CONFIG,
        hosts=args.hosts,
        host_mib=args.host_mib,
        epochs=args.epochs,
        seed=args.seed,
        system=args.system,
        overcommit_ratio=args.overcommit,
        fragment_host=args.fragment_host,
        pressure=replace(
            overcommit.OVERCOMMIT_CONFIG.pressure,
            victim_policy=args.victims,
        ),
    )
    cache = (
        ResultCache(args.cache_dir, expected=FleetResult)
        if args.cache_dir
        else ResultCache.from_env(expected=FleetResult)
    )
    result = run_cluster(config, workers=args.workers, cache=cache)
    print(format_fleet_summary(result))
    print(f"  overcommit ratio     {config.overcommit_ratio:.2f}x "
          f"(victims: {config.pressure.victim_policy})")
    print(f"  swap traffic         {result.fleet_swap_out_pages} out / "
          f"{result.fleet_swap_in_pages} in / "
          f"{result.fleet_swapped_pages} resident pages")
    print(f"  pressure demotions   {result.fleet_pressure_demotions} huge "
          f"({result.fleet_pressure_aligned_demotions} well-aligned)")
    print(f"  aligned huge retained {result.fleet_aligned_huge}")
    final = {r.host: r for r in result.host_epochs
             if r.epoch == max(h.epoch for h in result.host_epochs)}
    rows = " ".join(
        f"host{index}={record.pressure:.2f}"
        for index, record in sorted(final.items())
    )
    print(f"  final pressure       {rows}")
    if cache is not None and cache.stats.requests:
        print()
        print(format_cache_stats(cache.stats))
    return 0


def _cmd_trace(args: argparse.Namespace) -> int:
    """``repro trace <experiment>``: experiment + telemetry + export.

    Forces collection on, defaults the export directory to
    ``trace/<name>``, and bypasses the result cache unless one was asked
    for explicitly — cache hits skip the runs that emit the events.
    """
    import os

    if not os.environ.get("REPRO_TRACE_OUT", "").strip():
        os.environ["REPRO_TRACE_OUT"] = os.path.join("trace", args.name)
    if args.cache_dir is None:
        os.environ["REPRO_CACHE_DIR"] = ""
    obs.configure_from_env()
    return _cmd_experiment(args)


def _cmd_diff(args: argparse.Namespace) -> int:
    """``repro diff A B``: differential analysis of two trace exports."""
    from repro.metrics.report import format_run_diff
    from repro.obs.analyze import diff_runs

    diff = diff_runs(args.dir_a, args.dir_b, threshold=args.threshold)
    print(format_run_diff(diff))
    if args.strict and not diff.deterministic_match:
        return 1
    return 0


def _cmd_bench(args: argparse.Namespace) -> int:
    """``repro bench compare``: gate a perf report against history."""
    import os
    import pathlib

    from repro.metrics.report import format_bench_compare
    from repro.obs import bench

    fresh_path = pathlib.Path(args.fresh)
    if not fresh_path.exists():
        print(f"bench report not found: {fresh_path}")
        return 1
    import json

    report = json.loads(fresh_path.read_text())
    history = bench.load_history(args.history)
    if not history:
        print(f"no bench history at {args.history}; nothing to compare")
        return 0
    comparison = bench.compare_history(
        history, report, threshold=args.threshold, window=args.window
    )
    print(format_bench_compare(comparison, args.threshold))
    if comparison.regressions and os.environ.get("GITHUB_ACTIONS"):
        for drift in comparison.regressions:
            print(
                f"::warning title=bench-history::{drift.name} "
                f"{drift.baseline:.4g} -> {drift.value:.4g} "
                f"({drift.drift:+.1%})"
            )
    if args.strict and not comparison.ok:
        return 1
    return 0


def _export_trace() -> None:
    """Write the collected telemetry to the requested trace directory."""
    out_dir = obs.trace_out_dir()
    telemetry = obs.get()
    if out_dir is None or telemetry is None:
        return
    paths = obs.export.export_run(telemetry, out_dir)
    print()
    print(f"trace exported to {out_dir}/ ({', '.join(sorted(paths))})")
    stats = telemetry.stats()
    if stats.get("spans_dropped"):
        print(
            f"warning: {stats['spans_dropped']} spans dropped — trace "
            f"truncated at {telemetry.span_capacity} closed spans"
        )
    from repro.metrics.report import format_critical_path, format_health_summary
    from repro.obs.analyze import critical_paths

    report = critical_paths(telemetry)
    if report.epochs and report.total_s > 0.0:
        print(format_critical_path(report))
    events = telemetry.events()
    if any(event.kind.startswith("health.") for event in events):
        print(format_health_summary(events))


def _dispatch(args: argparse.Namespace) -> int:
    if args.command == "run":
        return _cmd_run(args)
    if args.command == "experiment":
        return _cmd_experiment(args)
    if args.command == "trace":
        return _cmd_trace(args)
    if args.command == "cluster":
        return _cmd_cluster(args)
    if args.command == "pressure":
        return _cmd_pressure(args)
    return 1  # pragma: no cover - argparse enforces the choices


def main(argv: list[str] | None = None) -> int:
    args = build_parser().parse_args(argv)
    if args.command == "list":
        return _cmd_list()
    if args.command == "diff":
        return _cmd_diff(args)
    if args.command == "bench":
        return _cmd_bench(args)
    _apply_exec_args(args)
    obs.configure_from_env()
    top = _profile_top(args)
    if top is None:
        status = _dispatch(args)
        _export_trace()
        return status
    import cProfile
    import io
    import pstats

    profiler = cProfile.Profile()
    profiler.enable()
    try:
        status = _dispatch(args)
    finally:
        profiler.disable()
        buffer = io.StringIO()
        pstats.Stats(profiler, stream=buffer).sort_stats(
            "cumulative"
        ).print_stats(top)
        report = buffer.getvalue()
        print()
        print(report, end="")
        out_dir = obs.trace_out_dir()
        if out_dir is not None:
            # Keep the profile next to the trace it explains.
            import pathlib

            directory = pathlib.Path(out_dir)
            directory.mkdir(parents=True, exist_ok=True)
            (directory / "profile.txt").write_text(report)
        _export_trace()
    return status


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
